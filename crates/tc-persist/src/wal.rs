//! The write-ahead log: append + fsync before apply, fixed-size segment
//! rotation, and recovery that replays every intact record and
//! truncates a torn tail.
//!
//! Layout: `<dir>/wal/wal-NNNNNN.seg`, each segment a sequence of
//! checksummed frames (tag [`TAG_WAL`](crate::codec::TAG_WAL)). File
//! order is sequence order: the appender assigns `seq` under the same
//! lock that writes the frame, so a reader walking segments in filename
//! order sees strictly increasing sequence numbers — the property
//! replay relies on to skip records already folded into a snapshot.
//!
//! Durability contract: [`Wal::append`] returns only after the record's
//! bytes have been handed to the OS *and* `fdatasync`ed. A crash after
//! `append` returns therefore never loses the batch; a crash during
//! `append` leaves at most one torn frame at the very tail, which
//! recovery detects (CRC/truncation) and chops off.

use crate::codec::{decode_wal, encode_wal, WalRecord, TAG_WAL};
use crate::PersistError;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use tc_datasets::Dataset;
use tc_graph::binary_io::{read_frame, write_frame, BinError};

/// Subdirectory holding the log segments.
pub const WAL_SUBDIR: &str = "wal";

fn segment_name(index: u64) -> String {
    format!("wal-{index:06}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Point-in-time WAL figures for the `stats` surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Total bytes across live segments.
    pub bytes: u64,
    /// Live segment files.
    pub segments: usize,
    /// Records appended since open.
    pub records_appended: u64,
    /// Segments deleted by snapshot-driven GC since open.
    pub segments_collected: u64,
}

/// The appender half of the log. One per store, behind a mutex: seq
/// assignment, frame write, and fsync happen under it, so file order is
/// seq order by construction.
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    current: File,
    current_index: u64,
    current_len: u64,
    next_seq: u64,
    /// Per-segment, per-dataset max sequence number — what GC consults
    /// to decide whether a snapshot fully covers a sealed segment.
    coverage: HashMap<u64, HashMap<Dataset, u64>>,
    records_appended: u64,
    segments_collected: u64,
}

/// Everything a WAL directory scan yields: the intact records in order,
/// plus what recovery had to do to get there.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every intact record, in sequence order.
    pub records: Vec<WalRecord>,
    /// Per-segment, per-dataset max seq (feeds the appender's GC map).
    pub coverage: HashMap<u64, HashMap<Dataset, u64>>,
    /// Segment indices found, sorted.
    pub segments: Vec<u64>,
    /// Bytes chopped off the final segment's torn tail, if any.
    pub torn_bytes_truncated: u64,
}

impl Wal {
    /// Opens (creating if needed) the log under `dir`, scanning existing
    /// segments first: intact records are returned for replay, a torn
    /// tail on the last segment is truncated in place, and appending
    /// resumes after the highest surviving sequence number.
    ///
    /// A corrupt frame anywhere *other* than the tail of the last
    /// segment is not a torn write — it is damage to supposedly-durable
    /// history, and surfaces as an error rather than silent data loss.
    pub fn open(dir: &Path, segment_bytes: u64) -> Result<(Self, WalScan), PersistError> {
        let wal_dir = dir.join(WAL_SUBDIR);
        fs::create_dir_all(&wal_dir)?;
        let mut scan = scan_segments(&wal_dir)?;

        let next_seq = scan.records.last().map_or(0, |r| r.seq) + 1;
        let current_index = scan.segments.last().copied().unwrap_or(0);
        let path = wal_dir.join(segment_name(current_index));
        let current = OpenOptions::new().create(true).append(true).open(&path)?;
        let current_len = current.metadata()?.len();
        if scan.segments.is_empty() {
            scan.segments.push(current_index);
        }
        Ok((
            Self {
                dir: wal_dir,
                segment_bytes: segment_bytes.max(4096),
                current,
                current_index,
                current_len,
                next_seq,
                coverage: scan.coverage.clone(),
                records_appended: 0,
                segments_collected: 0,
            },
            scan,
        ))
    }

    /// Appends one batch for `dataset`, assigning and returning its
    /// sequence number. Returns only after `fdatasync` — the batch is
    /// durable (and will be replayed after a crash) before the caller
    /// applies it in memory.
    pub fn append(
        &mut self,
        dataset: Dataset,
        ops: &[tc_stream::EdgeOp],
    ) -> Result<u64, PersistError> {
        let seq = self.next_seq;
        let rec = WalRecord {
            seq,
            dataset,
            ops: ops.to_vec(),
        };
        let payload = encode_wal(&rec);
        let mut framed = Vec::with_capacity(payload.len() + 32);
        write_frame(&mut framed, TAG_WAL, &payload)?;
        self.current.write_all(&framed)?;
        self.current.sync_data()?;
        self.next_seq += 1;
        self.current_len += framed.len() as u64;
        self.records_appended += 1;
        let per = self.coverage.entry(self.current_index).or_default();
        let entry = per.entry(dataset).or_insert(seq);
        *entry = (*entry).max(seq);
        if self.current_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// Raises the next sequence number above `seq` — used after
    /// recovery so numbering resumes above snapshots whose covered WAL
    /// segments were already collected.
    pub fn ensure_next_seq_above(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq + 1);
    }

    fn rotate(&mut self) -> Result<(), PersistError> {
        self.current_index += 1;
        let path = self.dir.join(segment_name(self.current_index));
        self.current = OpenOptions::new().create(true).append(true).open(path)?;
        self.current_len = 0;
        Ok(())
    }

    /// Deletes sealed segments every record of which is covered by the
    /// given per-dataset snapshot sequence numbers (`seq <=
    /// covered[dataset]` for every record). The active segment is never
    /// collected. Returns how many segments were removed.
    pub fn collect(&mut self, covered: &HashMap<Dataset, u64>) -> Result<usize, PersistError> {
        let mut removed = 0;
        let sealed: Vec<u64> = self
            .coverage
            .keys()
            .copied()
            .filter(|&i| i != self.current_index)
            .collect();
        for index in sealed {
            let fully_covered = self.coverage[&index]
                .iter()
                .all(|(ds, &max_seq)| covered.get(ds).is_some_and(|&c| c >= max_seq));
            if fully_covered {
                fs::remove_file(self.dir.join(segment_name(index)))?;
                self.coverage.remove(&index);
                removed += 1;
            }
        }
        self.segments_collected += removed as u64;
        Ok(removed)
    }

    /// Current figures for the `stats` surface.
    pub fn stats(&self) -> Result<WalStats, PersistError> {
        let mut bytes = 0;
        let mut segments = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if parse_segment_name(&entry.file_name().to_string_lossy()).is_some() {
                segments += 1;
                bytes += entry.metadata()?.len();
            }
        }
        Ok(WalStats {
            bytes,
            segments,
            records_appended: self.records_appended,
            segments_collected: self.segments_collected,
        })
    }
}

/// Scans every segment under `wal_dir` in filename order, validating
/// frames and sequence monotonicity, truncating a torn tail on the last
/// segment only.
fn scan_segments(wal_dir: &Path) -> Result<WalScan, PersistError> {
    let mut indices: Vec<u64> = fs::read_dir(wal_dir)?
        .filter_map(|e| {
            e.ok()
                .and_then(|e| parse_segment_name(&e.file_name().to_string_lossy()))
        })
        .collect();
    indices.sort_unstable();

    let mut scan = WalScan {
        segments: indices.clone(),
        ..WalScan::default()
    };
    let mut last_seq: Option<u64> = None;
    for (pos, &index) in indices.iter().enumerate() {
        let is_last_segment = pos + 1 == indices.len();
        let path = wal_dir.join(segment_name(index));
        let bytes = fs::read(&path)?;
        let mut r = &bytes[..];
        let mut good_offset = 0u64;
        loop {
            match read_frame(&mut r) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    if frame.tag != TAG_WAL {
                        return Err(PersistError::Corrupt(format!(
                            "unexpected frame tag {:?} in {}",
                            frame.tag,
                            path.display()
                        )));
                    }
                    let rec = decode_wal(&frame.payload)?;
                    if last_seq.is_some_and(|p| rec.seq <= p) {
                        return Err(PersistError::Corrupt(format!(
                            "non-monotonic WAL sequence {} in {}",
                            rec.seq,
                            path.display()
                        )));
                    }
                    last_seq = Some(rec.seq);
                    scan.coverage
                        .entry(index)
                        .or_default()
                        .entry(rec.dataset)
                        .and_modify(|m| *m = (*m).max(rec.seq))
                        .or_insert(rec.seq);
                    scan.records.push(rec);
                    good_offset = (bytes.len() - r.len()) as u64;
                }
                Err(BinError::Truncated | BinError::Checksum { .. } | BinError::BadMagic)
                    if is_last_segment =>
                {
                    // Torn tail: the crash interrupted the final append.
                    // Everything before it is intact; chop the rest.
                    scan.torn_bytes_truncated = bytes.len() as u64 - good_offset;
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(good_offset)?;
                    f.sync_all()?;
                    break;
                }
                Err(e) => {
                    return Err(PersistError::Corrupt(format!(
                        "damaged WAL history in {}: {e}",
                        path.display()
                    )))
                }
            }
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_stream::EdgeOp;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tc-persist-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_scan_round_trips_in_order() {
        let dir = tmp("roundtrip");
        {
            let (mut wal, scan) = Wal::open(&dir, 1 << 20).expect("open");
            assert!(scan.records.is_empty());
            assert_eq!(
                wal.append(Dataset::EmailEucore, &[EdgeOp::Insert(0, 1)])
                    .unwrap(),
                1
            );
            assert_eq!(
                wal.append(Dataset::Gowalla, &[EdgeOp::Delete(2, 3)])
                    .unwrap(),
                2
            );
            assert_eq!(wal.append(Dataset::EmailEucore, &[]).unwrap(), 3);
        }
        let (mut wal, scan) = Wal::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(scan.records[1].dataset, Dataset::Gowalla);
        assert_eq!(scan.records[0].ops, vec![EdgeOp::Insert(0, 1)]);
        assert_eq!(scan.torn_bytes_truncated, 0);
        // Appending resumes after the highest recovered seq.
        assert_eq!(wal.append(Dataset::Gowalla, &[]).unwrap(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_history_survives() {
        let dir = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20).expect("open");
            wal.append(Dataset::EmailEucore, &[EdgeOp::Insert(0, 1)])
                .unwrap();
            wal.append(Dataset::EmailEucore, &[EdgeOp::Insert(1, 2)])
                .unwrap();
        }
        // Simulate a crash mid-append: garbage where the next frame
        // would have started.
        let seg = dir.join(WAL_SUBDIR).join(segment_name(0));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"TCFR\x01\x00WREC\xFF\xFF").unwrap();
        drop(f);
        let before = fs::metadata(&seg).unwrap().len();

        let (_, scan) = Wal::open(&dir, 1 << 20).expect("recover");
        assert_eq!(scan.records.len(), 2, "intact prefix survives");
        assert!(scan.torn_bytes_truncated > 0);
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            before - scan.torn_bytes_truncated,
            "tail chopped in place"
        );
        // A second open sees a clean log.
        let (_, scan) = Wal::open(&dir, 1 << 20).expect("reopen");
        assert_eq!((scan.records.len(), scan.torn_bytes_truncated), (2, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_history_in_sealed_segment_is_an_error() {
        let dir = tmp("sealed");
        {
            // Tiny segment budget, oversized records: every append
            // rotates, so record 1 lands in a sealed segment.
            let (mut wal, _) = Wal::open(&dir, 4096).expect("open");
            let big = vec![EdgeOp::Insert(0, 1); 600];
            wal.append(Dataset::EmailEucore, &big).unwrap();
            wal.append(Dataset::EmailEucore, &big).unwrap();
        }
        // Flip a byte mid-payload of the FIRST (sealed) segment.
        let seg = dir.join(WAL_SUBDIR).join(segment_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&dir, 4096),
            Err(PersistError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_gc_drop_covered_segments() {
        let dir = tmp("gc");
        let (mut wal, _) = Wal::open(&dir, 4096).expect("open");
        let big = vec![EdgeOp::Insert(0, 1); 200];
        for _ in 0..4 {
            wal.append(Dataset::EmailEucore, &big).unwrap();
        }
        let stats = wal.stats().unwrap();
        assert!(stats.segments > 1, "tiny budget must have rotated");

        // Nothing covered: nothing collected.
        assert_eq!(wal.collect(&HashMap::new()).unwrap(), 0);

        // Cover everything: all sealed segments go, the active one stays.
        let covered = HashMap::from([(Dataset::EmailEucore, u64::MAX)]);
        let removed = wal.collect(&covered).unwrap();
        assert!(removed >= 1);
        let after = wal.stats().unwrap();
        assert_eq!(after.segments, stats.segments - removed);
        assert_eq!(after.segments_collected, removed as u64);

        // The survivors still replay cleanly and appending continues.
        drop(wal);
        let (mut wal, scan) = Wal::open(&dir, 4096).expect("reopen");
        assert!(scan.records.iter().all(|r| r.seq >= 1));
        let next = wal.append(Dataset::EmailEucore, &[]).unwrap();
        assert_eq!(next, 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
