//! Per-edge triangle support and per-vertex triangle counts — the shared
//! primitive of every application in this crate.
//!
//! Both primitives run on the adaptive intersection engine: the `*_with`
//! variants take a caller-owned [`Scratch`] so warm callers (the service
//! executor's worker pool) intersect with zero heap allocation; the plain
//! variants borrow the thread-local scratch.

use tc_algos::engine::{self, with_thread_scratch, Kernel, Scratch};
use tc_graph::{CsrGraph, VertexId};

/// One undirected edge with its triangle support.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeSupport {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Number of triangles containing the edge
    /// (`|N(u) ∩ N(v)|`).
    pub support: u32,
}

/// Computes the support of every edge (each listed once, `u < v`).
///
/// `O(Σ min(d(u), d(v)))` over edges via adaptive sorted intersections;
/// the per-edge outputs sum to three times the triangle count (each
/// triangle has three edges), which the tests pin against the exact
/// counters.
pub fn edge_supports(g: &CsrGraph) -> Vec<EdgeSupport> {
    with_thread_scratch(|scratch| edge_supports_with(g, scratch))
}

/// [`edge_supports`] against a caller-owned scratch.
pub fn edge_supports_with(g: &CsrGraph, scratch: &mut Scratch) -> Vec<EdgeSupport> {
    scratch.reserve_vertices(g.num_vertices());
    g.edges()
        .map(|(u, v)| EdgeSupport {
            u,
            v,
            support: engine::intersect_count(
                Kernel::Adaptive,
                g.neighbors(u),
                g.neighbors(v),
                scratch,
            ) as u32,
        })
        .collect()
}

/// Number of triangles through each vertex.
///
/// `result[v]` counts unordered triangles containing `v`; the vector sums
/// to three times the global triangle count.
pub fn triangles_per_vertex(g: &CsrGraph) -> Vec<u64> {
    with_thread_scratch(|scratch| triangles_per_vertex_with(g, scratch))
}

/// [`triangles_per_vertex`] against a caller-owned scratch (the common
/// neighbours are staged in the scratch's reusable buffer).
pub fn triangles_per_vertex_with(g: &CsrGraph, scratch: &mut Scratch) -> Vec<u64> {
    scratch.reserve_vertices(g.num_vertices());
    let mut counts = vec![0u64; g.num_vertices()];
    // Count each triangle once at its (u < v < w) representative, then
    // credit all three corners.
    for (u, v) in g.edges() {
        for &w in scratch.collect_common(g.neighbors(u), g.neighbors(v)) {
            if w > v {
                counts[u as usize] += 1;
                counts[v as usize] += 1;
                counts[w as usize] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_algos::cpu;
    use tc_graph::generators::{erdos_renyi, power_law_configuration};
    use tc_graph::GraphBuilder;

    fn k4() -> CsrGraph {
        GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).build()
    }

    #[test]
    fn k4_every_edge_supports_two_triangles() {
        let sup = edge_supports(&k4());
        assert_eq!(sup.len(), 6);
        assert!(sup.iter().all(|e| e.support == 2));
    }

    #[test]
    fn supports_sum_to_three_times_triangles() {
        for seed in 0..4u64 {
            let g = erdos_renyi(100, 400, seed);
            let total: u64 = edge_supports(&g).iter().map(|e| e.support as u64).sum();
            assert_eq!(total, 3 * cpu::node_iterator(&g), "seed {seed}");
        }
    }

    #[test]
    fn per_vertex_counts_sum_to_three_times_triangles() {
        let g = power_law_configuration(300, 2.2, 7.0, 5);
        let per_vertex = triangles_per_vertex(&g);
        assert_eq!(per_vertex.iter().sum::<u64>(), 3 * cpu::node_iterator(&g));
    }

    #[test]
    fn per_vertex_counts_on_k4() {
        // Every vertex of K4 sits in 3 triangles.
        assert_eq!(triangles_per_vertex(&k4()), vec![3, 3, 3, 3]);
    }

    #[test]
    fn shared_scratch_across_both_primitives_is_consistent() {
        let g = power_law_configuration(300, 2.2, 7.0, 5);
        let mut scratch = Scratch::new();
        let sup: u64 = edge_supports_with(&g, &mut scratch)
            .iter()
            .map(|e| e.support as u64)
            .sum();
        let per_vertex: u64 = triangles_per_vertex_with(&g, &mut scratch).iter().sum();
        assert_eq!(sup, per_vertex);
        // Reusing the now-warm scratch must not change anything.
        let sup2: u64 = edge_supports_with(&g, &mut scratch)
            .iter()
            .map(|e| e.support as u64)
            .sum();
        assert_eq!(sup, sup2);
    }

    #[test]
    fn triangle_free_graph_has_zero_support() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).build();
        assert!(edge_supports(&g).iter().all(|e| e.support == 0));
        assert!(triangles_per_vertex(&g).iter().all(|&c| c == 0));
    }
}
