//! k-truss decomposition (Wang & Cheng; the paper's reference \[31\]).
//!
//! The *k-truss* of a graph is the maximal subgraph in which every edge
//! participates in at least `k − 2` triangles. The decomposition assigns
//! each edge its *trussness*: the largest `k` whose k-truss contains it.
//! Computed by the standard support-peeling algorithm: repeatedly remove
//! the edge of minimum support, decrementing the support of the edges of
//! every triangle it closed.

use std::collections::HashMap;
use tc_algos::engine::{with_thread_scratch, Scratch};
use tc_graph::{CsrGraph, VertexId};

/// The trussness of every edge, keyed by `(u, v)` with `u < v`.
pub fn ktruss_decomposition(g: &CsrGraph) -> HashMap<(VertexId, VertexId), u32> {
    with_thread_scratch(|scratch| ktruss_decomposition_with(g, scratch))
}

/// [`ktruss_decomposition`] with the initial support pass intersecting
/// through a caller-owned scratch.
pub fn ktruss_decomposition_with(
    g: &CsrGraph,
    scratch: &mut Scratch,
) -> HashMap<(VertexId, VertexId), u32> {
    let support: Vec<u32> = crate::support::edge_supports_with(g, scratch)
        .into_iter()
        .map(|e| e.support)
        .collect();
    ktruss_from_supports(g, support)
}

/// The peeling phase alone: decomposes `g` given the initial per-edge
/// supports in [`CsrGraph::edges`] order (`support[i]` belongs to the
/// i-th edge). This is the read path for incrementally maintained
/// supports (`tc-analytics`): the expensive intersection pass is
/// skipped, and because the peel is deterministic in edge order, the
/// result is bit-identical to a full [`ktruss_decomposition`] whenever
/// the supports are.
///
/// Supplying supports that do not match `g` yields an arbitrary (but
/// safe) decomposition.
pub fn ktruss_from_supports(
    g: &CsrGraph,
    mut support: Vec<u32>,
) -> HashMap<(VertexId, VertexId), u32> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let m = edges.len();
    assert_eq!(support.len(), m, "one support per edge of g");
    let index_of: HashMap<(VertexId, VertexId), usize> =
        edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let edge_key = |a: VertexId, b: VertexId| if a < b { (a, b) } else { (b, a) };

    // Bucket queue over supports.
    let max_support = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_support + 1];
    for (i, &s) in support.iter().enumerate() {
        buckets[s as usize].push(i);
    }
    let mut removed = vec![false; m];
    let mut trussness = vec![2u32; m];
    let mut removed_count = 0usize;
    let mut k = 2u32; // current truss level being peeled
    let mut cursor = 0usize;

    while removed_count < m {
        // Find the minimum remaining support (lazy bucket queue).
        while cursor <= max_support && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let e = match buckets.get_mut(cursor).and_then(Vec::pop) {
            Some(e) => e,
            None => break,
        };
        if removed[e] || support[e] as usize != cursor {
            continue; // stale entry
        }
        // Peeling at support s means the edge survives in the (s+2)-truss.
        k = k.max(support[e] + 2);
        trussness[e] = k;
        removed[e] = true;
        removed_count += 1;

        // Every triangle through e loses this edge: decrement the other
        // two edges' supports.
        let (u, v) = edges[e];
        let (short, long) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        for &w in g.neighbors(short) {
            if w == long || !g.has_edge(long, w) {
                continue;
            }
            // The triangle (u, v, w) only still exists if both its other
            // edges survive; then each loses one unit of support.
            let e1 = index_of[&edge_key(u, w)];
            let e2 = index_of[&edge_key(v, w)];
            if removed[e1] || removed[e2] {
                continue;
            }
            for oi in [e1, e2] {
                if support[oi] > 0 {
                    support[oi] -= 1;
                    let s = support[oi] as usize;
                    buckets[s].push(oi);
                    if s < cursor {
                        cursor = s;
                    }
                }
            }
        }
    }

    edges.into_iter().zip(trussness).collect()
}

/// The maximum trussness over all edges (0 for edgeless graphs).
pub fn max_truss(g: &CsrGraph) -> u32 {
    ktruss_decomposition(g).values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators::{erdos_renyi, watts_strogatz};
    use tc_graph::GraphBuilder;

    #[test]
    fn k4_is_a_4_truss() {
        let g =
            GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).build();
        let t = ktruss_decomposition(&g);
        assert!(t.values().all(|&k| k == 4), "{t:?}");
        assert_eq!(max_truss(&g), 4);
    }

    #[test]
    fn triangle_with_pendant_edge() {
        // Triangle {0,1,2} (trussness 3) + pendant edge 2-3 (trussness 2).
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).build();
        let t = ktruss_decomposition(&g);
        assert_eq!(t[&(0, 1)], 3);
        assert_eq!(t[&(0, 2)], 3);
        assert_eq!(t[&(1, 2)], 3);
        assert_eq!(t[&(2, 3)], 2);
    }

    #[test]
    fn two_k4s_sharing_a_vertex() {
        // Both cliques keep trussness 4; the shared vertex doesn't merge them.
        let mut edges = vec![];
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
            }
        }
        for a in 3..7u32 {
            for b in (a + 1)..7 {
                edges.push((a, b));
            }
        }
        let g = GraphBuilder::from_edges(7, &edges).build();
        let t = ktruss_decomposition(&g);
        assert!(t.values().all(|&k| k == 4), "{t:?}");
    }

    #[test]
    fn triangle_free_graph_is_all_2_truss() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).build();
        assert!(ktruss_decomposition(&g).values().all(|&k| k == 2));
    }

    #[test]
    fn trussness_matches_definition_on_random_graphs() {
        // Check the defining property: within the k-truss (edges with
        // trussness >= k), every edge closes >= k-2 triangles.
        for seed in 0..3u64 {
            let g = erdos_renyi(40, 200, seed);
            let t = ktruss_decomposition(&g);
            let max_k = t.values().copied().max().unwrap_or(2);
            for k in 3..=max_k {
                let in_truss: std::collections::HashSet<(u32, u32)> = t
                    .iter()
                    .filter(|&(_, &kk)| kk >= k)
                    .map(|(&e, _)| e)
                    .collect();
                for &(u, v) in &in_truss {
                    let mut common = 0;
                    for &w in g.neighbors(u) {
                        if w == v {
                            continue;
                        }
                        let e1 = if u < w { (u, w) } else { (w, u) };
                        let e2 = if v < w { (v, w) } else { (w, v) };
                        if in_truss.contains(&e1) && in_truss.contains(&e2) {
                            common += 1;
                        }
                    }
                    assert!(
                        common >= k - 2,
                        "seed {seed}: edge ({u},{v}) has {common} triangles in the {k}-truss"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_lattice_truss() {
        // Watts-Strogatz beta=0, k=2: every edge to distance-1 neighbours
        // closes 2 triangles, distance-2 edges close 1; the 3-truss keeps
        // everything, the 4-truss... just check it's >= 3.
        let g = watts_strogatz(24, 2, 0.0, 0);
        assert!(max_truss(&g) >= 3);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(max_truss(&CsrGraph::empty(5)), 0);
    }
}
