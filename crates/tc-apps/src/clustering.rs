//! Clustering coefficients (Watts & Strogatz; the paper's reference \[34\]).

use crate::support::{triangles_per_vertex, triangles_per_vertex_with};
use tc_algos::engine::Scratch;
use tc_graph::CsrGraph;

/// Local clustering coefficient of every vertex:
/// `C(v) = 2·T(v) / (d(v)·(d(v)−1))`, 0 for degree < 2.
pub fn clustering_coefficients(g: &CsrGraph) -> Vec<f64> {
    coefficients_from_counts(g, &triangles_per_vertex(g))
}

/// [`clustering_coefficients`] against a caller-owned scratch.
pub fn clustering_coefficients_with(g: &CsrGraph, scratch: &mut Scratch) -> Vec<f64> {
    coefficients_from_counts(g, &triangles_per_vertex_with(g, scratch))
}

/// Local coefficients from already-known per-vertex triangle counts
/// (`triangles[v]` = triangles through `v` in `g`). Pure arithmetic —
/// identical integer inputs yield bit-identical floats — which is what
/// lets incrementally maintained counts (`tc-analytics`) serve the same
/// answers as a fresh recompute.
pub fn coefficients_from_counts(g: &CsrGraph, triangles: &[u64]) -> Vec<f64> {
    triangles
        .iter()
        .zip(g.vertices())
        .map(|(&t, v)| {
            let d = g.degree(v) as u64;
            if d < 2 {
                0.0
            } else {
                2.0 * t as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// The global clustering coefficient (transitivity):
/// `3 × triangles / open-or-closed wedges`.
pub fn global_clustering_coefficient(g: &CsrGraph) -> f64 {
    global_from_counts(g, &triangles_per_vertex(g))
}

/// [`global_clustering_coefficient`] against a caller-owned scratch.
pub fn global_clustering_coefficient_with(g: &CsrGraph, scratch: &mut Scratch) -> f64 {
    global_from_counts(g, &triangles_per_vertex_with(g, scratch))
}

/// Global coefficient from already-known per-vertex triangle counts.
/// Same bit-identical-from-counts contract as
/// [`coefficients_from_counts`].
pub fn global_from_counts(g: &CsrGraph, per_vertex: &[u64]) -> f64 {
    let triangles: u64 = per_vertex.iter().sum::<u64>() / 3;
    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators::{road_lattice, watts_strogatz};
    use tc_graph::GraphBuilder;

    #[test]
    fn complete_graph_is_fully_clustered() {
        let g =
            GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).build();
        assert!(clustering_coefficients(&g)
            .iter()
            .all(|&c| (c - 1.0).abs() < 1e-12));
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_has_zero_clustering() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        assert!(clustering_coefficients(&g).iter().all(|&c| c == 0.0));
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn ring_lattice_coefficient_formula() {
        // Watts-Strogatz beta = 0: C = 3(k-1) / (2(2k-1)); for k = 2 → 0.5.
        let g = watts_strogatz(40, 2, 0.0, 0);
        let c = clustering_coefficients(&g);
        assert!(c.iter().all(|&x| (x - 0.5).abs() < 1e-12), "{c:?}");
    }

    #[test]
    fn small_world_clusters_more_than_road_lattice() {
        let sw = global_clustering_coefficient(&watts_strogatz(500, 3, 0.1, 1));
        let road = global_clustering_coefficient(&road_lattice(22, 22, 0.0, 0.0, 0));
        assert!(sw > 0.3, "small world should cluster, got {sw}");
        assert_eq!(road, 0.0, "pure grid has no triangles");
    }

    #[test]
    fn coefficients_lie_in_unit_interval() {
        let g = tc_graph::generators::power_law_configuration(400, 2.2, 8.0, 7);
        for c in clustering_coefficients(&g) {
            assert!((0.0..=1.0).contains(&c));
        }
        let gc = global_clustering_coefficient(&g);
        assert!((0.0..=1.0).contains(&gc));
    }
}
