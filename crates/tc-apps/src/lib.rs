//! Applications built on triangle counting.
//!
//! The paper motivates triangle counting as the foundation of several
//! graph-mining workloads (Section 1): *k-truss* decomposition,
//! *clustering coefficients*, and triangle-based *link recommendation*.
//! This crate implements all three on top of the workspace's substrate, so
//! the repository demonstrates the downstream value of the counting
//! pipeline, not just the counting itself.
//!
//! All three start from the same primitive — per-edge triangle *support*
//! ([`support::edge_supports`]) — computed exactly with the same sorted
//! intersection machinery the GPU kernels use.

pub mod clustering;
pub mod ktruss;
pub mod recommend;
pub mod support;

pub use clustering::{
    clustering_coefficients, clustering_coefficients_with, coefficients_from_counts,
    global_clustering_coefficient, global_clustering_coefficient_with, global_from_counts,
};
pub use ktruss::{
    ktruss_decomposition, ktruss_decomposition_with, ktruss_from_supports, max_truss,
};
pub use recommend::{recommend_for, recommend_for_with, RecommendScore};
pub use support::{
    edge_supports, edge_supports_with, triangles_per_vertex, triangles_per_vertex_with, EdgeSupport,
};
