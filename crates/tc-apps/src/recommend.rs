//! Triangle-based link recommendation (Tsourakakis et al.; the paper's
//! reference \[29\]).
//!
//! Recommends new edges for a vertex by scoring non-neighbours on the
//! triangles the new edge would close: common-neighbour count, Jaccard
//! similarity, and Adamic–Adar weighting (common neighbours discounted by
//! their degree).

use tc_algos::engine::{with_thread_scratch, Scratch};
use tc_graph::{CsrGraph, VertexId};

/// A scored candidate link.
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendScore {
    /// Candidate endpoint.
    pub candidate: VertexId,
    /// Triangles the edge `(source, candidate)` would close.
    pub common_neighbors: u32,
    /// Jaccard similarity of the neighbourhoods.
    pub jaccard: f64,
    /// Adamic–Adar score: `Σ_{w ∈ N(u) ∩ N(v)} 1 / ln d(w)`.
    pub adamic_adar: f64,
}

/// Scores every two-hop candidate for `source` and returns the top `k`
/// by common-neighbour count (ties: higher Adamic–Adar, then lower id).
///
/// Only vertices at distance exactly two are candidates — a link
/// recommendation that closes no triangle carries no signal.
pub fn recommend_for(g: &CsrGraph, source: VertexId, k: usize) -> Vec<RecommendScore> {
    with_thread_scratch(|scratch| recommend_for_with(g, source, k, scratch))
}

/// [`recommend_for`] with the common-neighbour lists staged in a
/// caller-owned scratch.
pub fn recommend_for_with(
    g: &CsrGraph,
    source: VertexId,
    k: usize,
    scratch: &mut Scratch,
) -> Vec<RecommendScore> {
    let nbrs = g.neighbors(source);
    let mut candidate_set: Vec<VertexId> = nbrs
        .iter()
        .flat_map(|&v| g.neighbors(v).iter().copied())
        .filter(|&w| w != source && !g.has_edge(source, w))
        .collect();
    candidate_set.sort_unstable();
    candidate_set.dedup();

    let mut scored: Vec<RecommendScore> = candidate_set
        .into_iter()
        .map(|c| {
            let shared = scratch.collect_common(nbrs, g.neighbors(c));
            let common = shared.len() as u32;
            let union = nbrs.len() + g.degree(c) - common as usize;
            let adamic_adar = shared
                .iter()
                .map(|&w| {
                    let d = g.degree(w) as f64;
                    if d > 1.0 {
                        1.0 / d.ln()
                    } else {
                        0.0
                    }
                })
                .sum();
            RecommendScore {
                candidate: c,
                common_neighbors: common,
                jaccard: if union > 0 {
                    common as f64 / union as f64
                } else {
                    0.0
                },
                adamic_adar,
            }
        })
        .collect();

    scored.sort_by(|a, b| {
        b.common_neighbors
            .cmp(&a.common_neighbors)
            .then(b.adamic_adar.total_cmp(&a.adamic_adar))
            .then(a.candidate.cmp(&b.candidate))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::GraphBuilder;

    /// Two triangles sharing edge (1, 2), plus a far vertex:
    /// 0-1, 0-2, 1-2, 1-3, 2-3 — and 4 connected only to 3.
    fn diamond_plus_tail() -> CsrGraph {
        GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]).build()
    }

    #[test]
    fn recommends_the_diamond_closure() {
        let g = diamond_plus_tail();
        // 0's two-hop candidates: 3 (via 1 and 2 → 2 common neighbours).
        let recs = recommend_for(&g, 0, 5);
        assert_eq!(recs[0].candidate, 3);
        assert_eq!(recs[0].common_neighbors, 2);
        assert!(recs[0].jaccard > 0.0);
        assert!(recs[0].adamic_adar > 0.0);
    }

    #[test]
    fn never_recommends_existing_neighbors_or_self() {
        let g = diamond_plus_tail();
        for v in g.vertices() {
            for r in recommend_for(&g, v, 10) {
                assert_ne!(r.candidate, v);
                assert!(!g.has_edge(v, r.candidate));
            }
        }
    }

    #[test]
    fn isolated_vertex_gets_no_recommendations() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert!(recommend_for(&g, 3, 5).is_empty());
    }

    #[test]
    fn k_truncates_the_list() {
        // Star of triangles: 0 connected to 1..6, ring among leaves gives
        // many two-hop candidates for leaf 1.
        let g = GraphBuilder::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (2, 3),
                (4, 5),
            ],
        )
        .build();
        let recs = recommend_for(&g, 1, 2);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn scores_are_ordered() {
        let g = tc_graph::generators::power_law_configuration(300, 2.2, 8.0, 4);
        let hub = g
            .vertices()
            .max_by_key(|&v| g.degree(v))
            .expect("non-empty");
        let recs = recommend_for(&g, hub, 10);
        for w in recs.windows(2) {
            assert!(w[0].common_neighbors >= w[1].common_neighbors);
        }
    }
}
