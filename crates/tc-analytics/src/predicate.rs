//! Subscription predicates and the notifications they produce.
//!
//! A predicate is evaluated around every applied batch: the server
//! snapshots the observed value *before* the batch (under the same lock
//! the apply holds), applies the batch, observes again, and fires a
//! [`Notification`] iff the transition trips the predicate. Evaluation
//! is therefore exact and race-free with respect to the batch — a
//! predicate can never miss a crossing or see a torn intermediate
//! state, and two replicas applying the same batches fire identical
//! notification sequences.

use crate::state::AnalyticsState;
use tc_graph::VertexId;
use tc_stream::DynamicGraph;

/// A condition on the analytics state, checked after every applied
/// batch on the subscribed dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Predicate {
    /// Fires when the support of edge `{u, v}` transitions from
    /// "present with support ≥ k" to "absent or support < k". Edge
    /// deletion counts as dropping below any `k` — the k-truss
    /// invariant the subscriber is watching is gone either way.
    SupportBelow {
        /// Smaller endpoint (canonical `u < v`).
        u: VertexId,
        /// Larger endpoint.
        v: VertexId,
        /// The threshold: fire when support falls below this.
        k: u32,
    },
    /// Fires when the local clustering coefficient of `vertex` moves by
    /// strictly more than `epsilon` (either direction) across a batch.
    ClusteringDelta {
        /// The watched vertex.
        vertex: VertexId,
        /// Minimum absolute coefficient change that fires.
        epsilon: f64,
    },
    /// Fires when the global triangle count crosses `threshold` in
    /// either direction (`before < T ≤ after` or `after < T ≤ before`).
    CountCross {
        /// The watched count level.
        threshold: u64,
    },
}

/// The value a predicate watches, captured at one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Observed {
    /// Support of the watched edge; `None` while the edge is absent.
    Support(Option<u32>),
    /// Local clustering coefficient of the watched vertex.
    Clustering(f64),
    /// Global triangle count.
    Count(u64),
}

/// A fired predicate, with the before/after evidence.
#[derive(Clone, Debug, PartialEq)]
pub enum Notification {
    /// [`Predicate::SupportBelow`] tripped.
    SupportBelow {
        /// Smaller endpoint of the watched edge.
        u: VertexId,
        /// Larger endpoint of the watched edge.
        v: VertexId,
        /// The subscribed threshold.
        k: u32,
        /// Support after the batch (0 when the edge is gone).
        support: u32,
        /// Whether the edge still exists after the batch.
        exists: bool,
    },
    /// [`Predicate::ClusteringDelta`] tripped.
    ClusteringDelta {
        /// The watched vertex.
        vertex: VertexId,
        /// The subscribed sensitivity.
        epsilon: f64,
        /// Coefficient before the batch.
        before: f64,
        /// Coefficient after the batch.
        after: f64,
    },
    /// [`Predicate::CountCross`] tripped.
    CountCross {
        /// The subscribed level.
        threshold: u64,
        /// Count before the batch.
        before: u64,
        /// Count after the batch.
        after: u64,
    },
}

/// Local clustering coefficient from a maintained local count and the
/// current degree — the same arithmetic as
/// [`tc_apps::coefficients_from_counts`], so observed values are
/// bit-identical to a fresh recompute.
pub fn clustering_value(local_triangles: u64, degree: usize) -> f64 {
    let d = degree as u64;
    if d < 2 {
        0.0
    } else {
        2.0 * local_triangles as f64 / (d * (d - 1)) as f64
    }
}

impl Predicate {
    /// Captures the value this predicate watches from the maintained
    /// state (and the live graph, for degrees).
    pub fn observe(&self, state: &AnalyticsState, g: &DynamicGraph) -> Observed {
        match *self {
            Predicate::SupportBelow { u, v, .. } => Observed::Support(state.support(u, v)),
            Predicate::ClusteringDelta { vertex, .. } => Observed::Clustering(clustering_value(
                state.local_count(vertex),
                g.degree(vertex),
            )),
            Predicate::CountCross { .. } => Observed::Count(state.triangles()),
        }
    }

    /// Checks the before→after transition; `Some` iff the predicate
    /// fired. `before` must have been produced by
    /// [`observe`](Predicate::observe) on the same predicate.
    pub fn evaluate(&self, before: Observed, after: Observed) -> Option<Notification> {
        match (*self, before, after) {
            (Predicate::SupportBelow { u, v, k }, Observed::Support(b), Observed::Support(a)) => {
                let below = |s: Option<u32>| s.is_none_or(|s| s < k);
                if !below(b) && below(a) {
                    Some(Notification::SupportBelow {
                        u,
                        v,
                        k,
                        support: a.unwrap_or(0),
                        exists: a.is_some(),
                    })
                } else {
                    None
                }
            }
            (
                Predicate::ClusteringDelta { vertex, epsilon },
                Observed::Clustering(b),
                Observed::Clustering(a),
            ) => {
                if (a - b).abs() > epsilon {
                    Some(Notification::ClusteringDelta {
                        vertex,
                        epsilon,
                        before: b,
                        after: a,
                    })
                } else {
                    None
                }
            }
            (Predicate::CountCross { threshold }, Observed::Count(b), Observed::Count(a)) => {
                if (b >= threshold) != (a >= threshold) {
                    Some(Notification::CountCross {
                        threshold,
                        before: b,
                        after: a,
                    })
                } else {
                    None
                }
            }
            _ => {
                debug_assert!(false, "observed values from a different predicate");
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_algos::engine::Scratch;
    use tc_graph::GraphBuilder;
    use tc_stream::EdgeOp;

    fn setup() -> (DynamicGraph, AnalyticsState) {
        // Triangle {0,1,2} plus pendant 2-3.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).build();
        let mut scratch = Scratch::new();
        let st = AnalyticsState::build(&g, &mut scratch);
        (DynamicGraph::new(g), st)
    }

    fn step(
        g: &mut DynamicGraph,
        st: &mut AnalyticsState,
        p: Predicate,
        ops: &[EdgeOp],
    ) -> Option<Notification> {
        let before = p.observe(st, g);
        let (_, changes) = g.apply_batch_recorded(ops);
        st.apply_changes(&changes);
        let after = p.observe(st, g);
        p.evaluate(before, after)
    }

    #[test]
    fn support_below_fires_on_drop_and_deletion() {
        let (mut g, mut st) = setup();
        let p = Predicate::SupportBelow { u: 0, v: 1, k: 1 };
        // Support of (0,1) is 1; deleting (1,2) drops it to 0.
        let n = step(&mut g, &mut st, p, &[EdgeOp::Delete(1, 2)]);
        assert_eq!(
            n,
            Some(Notification::SupportBelow {
                u: 0,
                v: 1,
                k: 1,
                support: 0,
                exists: true
            })
        );
        // Already below: no refire on an unrelated batch.
        assert_eq!(step(&mut g, &mut st, p, &[EdgeOp::Insert(0, 3)]), None);

        // Fresh setup: deleting the watched edge itself fires too.
        let (mut g, mut st) = setup();
        let n = step(&mut g, &mut st, p, &[EdgeOp::Delete(0, 1)]);
        assert_eq!(
            n,
            Some(Notification::SupportBelow {
                u: 0,
                v: 1,
                k: 1,
                support: 0,
                exists: false
            })
        );
    }

    #[test]
    fn clustering_delta_fires_on_big_moves_only() {
        let (mut g, mut st) = setup();
        let p = Predicate::ClusteringDelta {
            vertex: 2,
            epsilon: 0.2,
        };
        // C(2) = 2·1/(3·2) = 1/3; deleting (0,1) drops it to 0.
        let n = step(&mut g, &mut st, p, &[EdgeOp::Delete(0, 1)]);
        match n {
            Some(Notification::ClusteringDelta { before, after, .. }) => {
                assert!((before - 1.0 / 3.0).abs() < 1e-12);
                assert_eq!(after, 0.0);
            }
            other => panic!("expected clustering notification, got {other:?}"),
        }
        // Deleting (0,2) leaves C(2) at 0 (no triangles either side):
        // below-epsilon moves stay silent.
        assert_eq!(step(&mut g, &mut st, p, &[EdgeOp::Delete(0, 2)]), None);
    }

    #[test]
    fn count_cross_fires_both_directions() {
        let (mut g, mut st) = setup();
        let p = Predicate::CountCross { threshold: 2 };
        // 1 triangle; inserting (1,3) and (0,3) adds 0-1-3, 1-2-3, 0-2-3.
        let n = step(
            &mut g,
            &mut st,
            p,
            &[EdgeOp::Insert(1, 3), EdgeOp::Insert(0, 3)],
        );
        assert_eq!(
            n,
            Some(Notification::CountCross {
                threshold: 2,
                before: 1,
                after: 4
            })
        );
        // Dropping back under the threshold fires downward.
        let n = step(
            &mut g,
            &mut st,
            p,
            &[EdgeOp::Delete(2, 3), EdgeOp::Delete(0, 3)],
        );
        assert_eq!(
            n,
            Some(Notification::CountCross {
                threshold: 2,
                before: 4,
                after: 1
            })
        );
        // Staying on one side is silent.
        assert_eq!(step(&mut g, &mut st, p, &[EdgeOp::Delete(1, 3)]), None);
    }
}
