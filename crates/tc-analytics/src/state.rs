//! The maintained analytics state: exact per-edge support and per-vertex
//! local triangle counts, updated in `O(wedges)` per committed change.

use std::collections::HashMap;
use tc_algos::engine::Scratch;
use tc_graph::{CsrGraph, VertexId};
use tc_stream::EdgeChange;

/// Canonical `u < v` key for an undirected edge.
#[inline]
fn key(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Exact per-edge support and per-vertex local triangle counts of a
/// dynamic graph, maintained incrementally from the
/// [`EdgeChange`] stream of
/// [`DynamicGraph::apply_batch_recorded`](tc_stream::DynamicGraph::apply_batch_recorded).
///
/// Invariants (all exact, enforced by the differential suite):
///
/// - `supports` holds every present edge once, keyed `u < v`, with
///   `supports[(u, v)] = |N(u) ∩ N(v)|` on the current graph;
/// - `local[v]` is the number of triangles containing `v`;
/// - `triangles = Σ local / 3 = Σ supports / 3`.
///
/// The update rule rides the same identity the stream's count
/// maintenance uses: inserting `{u, v}` with common neighbourhood `W`
/// closes exactly `|W|` triangles — one per `w ∈ W` — each of which
/// raises the support of `(u, w)` and `(v, w)` by one and the local
/// count of all three corners; deletion is the mirror image. The wedge
/// sets arrive precomputed in the [`EdgeChange`]s (the stream already
/// intersected the endpoints to maintain its count), so applying a
/// change is pure bookkeeping: no intersections, no graph access.
#[derive(Clone, Debug, Default)]
pub struct AnalyticsState {
    supports: HashMap<(VertexId, VertexId), u32>,
    local: Vec<u64>,
    triangles: u64,
    changes_applied: u64,
    batches_applied: u64,
}

impl AnalyticsState {
    /// Cold-start build from a static graph: one full support pass plus
    /// one per-vertex counting pass (both through the adaptive
    /// intersection engine). This is the expensive path that incremental
    /// maintenance subsequently avoids.
    pub fn build(g: &CsrGraph, scratch: &mut Scratch) -> Self {
        let mut supports = HashMap::with_capacity(g.num_edges());
        for es in tc_apps::edge_supports_with(g, scratch) {
            supports.insert((es.u, es.v), es.support);
        }
        let local = tc_apps::triangles_per_vertex_with(g, scratch);
        let triangles = local.iter().sum::<u64>() / 3;
        Self {
            supports,
            local,
            triangles,
            changes_applied: 0,
            batches_applied: 0,
        }
    }

    /// Applies one recorded batch worth of committed changes, in the
    /// order they were emitted. Cost is `O(Σ |wedges|)` — proportional
    /// to the number of triangles the batch touched, independent of
    /// graph size.
    pub fn apply_changes(&mut self, changes: &[EdgeChange]) {
        for ch in changes {
            let w_count = ch.wedges.len() as u64;
            if ch.inserted {
                let prev = self.supports.insert((ch.u, ch.v), ch.wedges.len() as u32);
                debug_assert!(prev.is_none(), "insert of an already-tracked edge");
                for &w in &ch.wedges {
                    for e in [key(ch.u, w), key(ch.v, w)] {
                        *self
                            .supports
                            .get_mut(&e)
                            .expect("wedge edge must be tracked") += 1;
                    }
                    self.local[w as usize] += 1;
                }
                self.local[ch.u as usize] += w_count;
                self.local[ch.v as usize] += w_count;
                self.triangles += w_count;
            } else {
                let prev = self.supports.remove(&(ch.u, ch.v));
                debug_assert_eq!(
                    prev,
                    Some(ch.wedges.len() as u32),
                    "support of a deleted edge must equal its wedge count"
                );
                for &w in &ch.wedges {
                    for e in [key(ch.u, w), key(ch.v, w)] {
                        *self
                            .supports
                            .get_mut(&e)
                            .expect("wedge edge must be tracked") -= 1;
                    }
                    self.local[w as usize] -= 1;
                }
                self.local[ch.u as usize] -= w_count;
                self.local[ch.v as usize] -= w_count;
                self.triangles -= w_count;
            }
            self.changes_applied += 1;
        }
        self.batches_applied += 1;
    }

    /// Support of edge `{a, b}` (any endpoint order); `None` if the edge
    /// is not currently present.
    pub fn support(&self, a: VertexId, b: VertexId) -> Option<u32> {
        self.supports.get(&key(a, b)).copied()
    }

    /// Number of triangles through `v`; 0 for out-of-range ids.
    pub fn local_count(&self, v: VertexId) -> u64 {
        self.local.get(v as usize).copied().unwrap_or(0)
    }

    /// Per-vertex triangle counts, indexed by vertex id.
    pub fn local_counts(&self) -> &[u64] {
        &self.local
    }

    /// Exact global triangle count.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Number of tracked (present) edges.
    pub fn edge_count(&self) -> usize {
        self.supports.len()
    }

    /// Number of vertices the state was built over.
    pub fn num_vertices(&self) -> usize {
        self.local.len()
    }

    /// Committed changes applied since the build.
    pub fn changes_applied(&self) -> u64 {
        self.changes_applied
    }

    /// Recorded batches applied since the build.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The maintained supports laid out in `g.edges()` order — the input
    /// [`tc_apps::ktruss_from_supports`] expects. `g` must be a
    /// materialisation of the same graph this state tracks (the
    /// expect below enforces edge-set agreement).
    pub fn supports_in_edge_order(&self, g: &CsrGraph) -> Vec<u32> {
        assert_eq!(
            g.num_edges(),
            self.supports.len(),
            "materialised graph and analytics state disagree on edge count"
        );
        g.edges()
            .map(|(u, v)| {
                *self
                    .supports
                    .get(&(u, v))
                    .expect("materialised edge missing from analytics state")
            })
            .collect()
    }

    /// Approximate resident bytes (hash map entries + local vector).
    pub fn approx_bytes(&self) -> usize {
        // Entry ≈ key (8) + value (4, padded to 8) + hashmap overhead.
        self.supports.len() * 24 + self.local.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_stream::{DynamicGraph, EdgeOp};

    fn k4_minus_one() -> CsrGraph {
        // K4 without (2, 3).
        tc_graph::GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]).build()
    }

    #[test]
    fn build_matches_definitions() {
        let g = k4_minus_one();
        let mut scratch = Scratch::new();
        let st = AnalyticsState::build(&g, &mut scratch);
        assert_eq!(st.triangles(), 2); // 0-1-2 and 0-1-3
        assert_eq!(st.support(0, 1), Some(2));
        assert_eq!(st.support(1, 2), Some(1));
        assert_eq!(st.support(3, 0), Some(1));
        assert_eq!(st.support(2, 3), None);
        assert_eq!(st.local_counts(), &[2, 2, 1, 1]);
        assert_eq!(st.edge_count(), 5);
    }

    #[test]
    fn incremental_tracks_insert_and_delete() {
        let g = k4_minus_one();
        let mut scratch = Scratch::new();
        let mut st = AnalyticsState::build(&g, &mut scratch);
        let mut dg = DynamicGraph::new(g);

        let (_, changes) = dg.apply_batch_recorded(&[EdgeOp::Insert(2, 3)]);
        st.apply_changes(&changes);
        // K4 complete: every edge supports 2, every vertex sits in 3.
        assert_eq!(st.triangles(), 4);
        assert_eq!(st.support(2, 3), Some(2));
        assert_eq!(st.support(0, 1), Some(2));
        assert_eq!(st.local_counts(), &[3, 3, 3, 3]);

        let (_, changes) = dg.apply_batch_recorded(&[EdgeOp::Delete(0, 1)]);
        st.apply_changes(&changes);
        assert_eq!(st.triangles(), 2);
        assert_eq!(st.support(0, 1), None);
        assert_eq!(st.support(0, 2), Some(1));
        assert_eq!(st.local_counts(), &[1, 1, 2, 2]);
        assert_eq!(st.changes_applied(), 2);
        assert_eq!(st.batches_applied(), 2);

        // The maintained state equals a fresh build on the materialised
        // graph.
        let m = dg.materialize();
        let fresh = AnalyticsState::build(&m, &mut scratch);
        assert_eq!(st.supports, fresh.supports);
        assert_eq!(st.local, fresh.local);
        assert_eq!(st.triangles, fresh.triangles);
        assert_eq!(
            st.supports_in_edge_order(&m),
            fresh.supports_in_edge_order(&m)
        );
    }
}
