//! # tc-analytics — incremental analytics on the delta layer
//!
//! `tc-stream` keeps the *global* triangle count exact under edge
//! streams; this crate extends the same incremental discipline to the
//! per-edge and per-vertex quantities the paper's motivating
//! applications consume (Section 1: k-truss, clustering coefficients,
//! link recommendation). An [`AnalyticsState`] maintains
//!
//! - **per-edge support** `|N(u) ∩ N(v)|` for every present edge, and
//! - **per-vertex local triangle counts**,
//!
//! exactly, by replaying the [`tc_stream::EdgeChange`] records emitted
//! by [`DynamicGraph::apply_batch_recorded`](tc_stream::DynamicGraph::apply_batch_recorded):
//! each committed change carries the wedge set it closed or opened, so
//! maintenance is `O(triangles touched)` bookkeeping with no graph
//! access at all. Downstream reads then skip their dominant cost:
//!
//! - **k-truss** becomes the peel alone
//!   ([`tc_apps::ktruss_from_supports`]) — the full support pass, the
//!   expensive half, is already maintained;
//! - **clustering coefficients** become pure arithmetic
//!   ([`tc_apps::coefficients_from_counts`]) over the maintained counts;
//! - **recommendation** already reads the materialised live graph.
//!
//! Both read paths are bit-identical to fresh recomputes on the
//! materialised graph — the peel is deterministic in edge order and the
//! coefficient arithmetic sees identical integer inputs — which the
//! differential suite (`tests/analytics_differential.rs`) pins after
//! every random batch.
//!
//! The second half of the crate is the *subscription model*:
//! [`Predicate`]s ("support of `(u,v)` dropped below `k`", "clustering
//! of `v` moved by > ε", "count crossed `T`") are observed before and
//! after every applied batch and produce [`Notification`]s on exactly
//! the batches that trip them. `tc-service` attaches these to
//! connections as push subscriptions.
//!
//! ```
//! use tc_analytics::AnalyticsState;
//! use tc_algos::engine::Scratch;
//! use tc_graph::GraphBuilder;
//! use tc_stream::{DynamicGraph, EdgeOp};
//!
//! let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2)]).build();
//! let mut scratch = Scratch::new();
//! let mut state = AnalyticsState::build(&g, &mut scratch);
//! let mut dg = DynamicGraph::new(g);
//!
//! let (_, changes) = dg.apply_batch_recorded(&[EdgeOp::Insert(1, 3), EdgeOp::Insert(2, 3)]);
//! state.apply_changes(&changes);
//! assert_eq!(state.triangles(), 2);
//! assert_eq!(state.support(1, 2), Some(2)); // in 0-1-2 and 1-2-3
//! assert_eq!(state.local_count(3), 1);
//! ```

pub mod predicate;
pub mod state;

pub use predicate::{clustering_value, Notification, Observed, Predicate};
pub use state::AnalyticsState;
