//! Differential suite: incrementally maintained analytics vs fresh
//! recomputes, under random insert/delete streams.
//!
//! The acceptance property of the tc-analytics subsystem (ISSUE 8):
//! after **every** random batch — inserts, deletes, flip-flops,
//! rejects, and any compaction schedule including the background
//! worker — the maintained per-edge supports and per-vertex local
//! counts must equal a fresh `tc-apps` recompute on the materialised
//! graph, and the k-truss / clustering read paths fed from the
//! maintained state must be **bit-identical** to the full recomputes.

use proptest::prelude::*;
use tc_algos::engine::Scratch;
use tc_analytics::AnalyticsState;
use tc_apps::{
    clustering_coefficients_with, coefficients_from_counts, edge_supports_with,
    global_clustering_coefficient_with, global_from_counts, ktruss_decomposition_with,
    ktruss_from_supports, triangles_per_vertex_with,
};
use tc_graph::generators::{erdos_renyi, power_law_configuration};
use tc_graph::CsrGraph;
use tc_stream::{CompactionPolicy, DynamicGraph, EdgeOp};

/// Strategy shared with the tc-stream differential suite: a base graph
/// size, a seed, and a stream of raw op batches that intentionally
/// range past the vertex count to exercise rejection.
#[allow(clippy::type_complexity)]
fn arb_stream(
    max_n: u32,
    batches: usize,
    batch_len: usize,
) -> impl Strategy<Value = (u32, u64, Vec<Vec<(u32, u32, bool)>>)> {
    (8..max_n, 0u64..1 << 40).prop_flat_map(move |(n, seed)| {
        let op = (0..n + 2, 0..n + 2, prop_oneof![Just(true), Just(false)]);
        let batch = prop::collection::vec(op, 1..batch_len);
        (
            Just(n),
            Just(seed),
            prop::collection::vec(batch, 1..batches),
        )
    })
}

fn to_ops(raw: &[(u32, u32, bool)]) -> Vec<EdgeOp> {
    raw.iter()
        .map(|&(u, v, ins)| {
            if ins {
                EdgeOp::Insert(u, v)
            } else {
                EdgeOp::Delete(u, v)
            }
        })
        .collect()
}

/// Asserts the maintained state equals a fresh build on `m`, field by
/// field, and that both read paths are bit-identical to full
/// recomputes.
fn assert_state_matches(state: &AnalyticsState, m: &CsrGraph, scratch: &mut Scratch) {
    // Per-edge supports.
    let fresh = edge_supports_with(m, scratch);
    assert_eq!(state.edge_count(), fresh.len(), "edge count diverged");
    for es in &fresh {
        assert_eq!(
            state.support(es.u, es.v),
            Some(es.support),
            "support of ({}, {}) diverged",
            es.u,
            es.v
        );
    }
    // Per-vertex local counts.
    let fresh_local = triangles_per_vertex_with(m, scratch);
    assert_eq!(state.local_counts(), fresh_local.as_slice());
    assert_eq!(state.triangles(), fresh_local.iter().sum::<u64>() / 3);

    // k-truss from maintained supports == full decomposition.
    let peel = ktruss_from_supports(m, state.supports_in_edge_order(m));
    let full = ktruss_decomposition_with(m, scratch);
    assert_eq!(peel, full, "ktruss read path diverged");

    // Clustering from maintained counts == full recompute, bit for bit.
    let coeffs = coefficients_from_counts(m, state.local_counts());
    let full_coeffs = clustering_coefficients_with(m, scratch);
    assert_eq!(coeffs.len(), full_coeffs.len());
    for (i, (a, b)) in coeffs.iter().zip(&full_coeffs).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "clustering coefficient of {i} not bit-identical: {a} vs {b}"
        );
    }
    let global = global_from_counts(m, state.local_counts());
    let full_global = global_clustering_coefficient_with(m, scratch);
    assert!(global.to_bits() == full_global.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Maintained analytics == fresh recomputes after every batch, with
    /// a tight compaction budget so inline compactions fire mid-stream.
    #[test]
    fn maintained_analytics_match_recomputes_after_every_batch(
        (n, seed, stream) in arb_stream(40, 5, 30),
    ) {
        let base = erdos_renyi(n as usize, (n as usize) * 2, seed);
        let mut scratch = Scratch::new();
        let mut state = AnalyticsState::build(&base, &mut scratch);
        let mut g = DynamicGraph::new(base).policy(CompactionPolicy::with_budget(12));
        for (i, raw) in stream.iter().enumerate() {
            let (r, changes) = g.apply_batch_recorded(&to_ops(raw));
            state.apply_changes(&changes);
            prop_assert_eq!(
                state.triangles(), r.triangles,
                "maintained count diverged from stream at batch {}", i
            );
            let m = g.materialize();
            assert_state_matches(&state, &m, &mut scratch);
        }
    }

    /// Same property with the background compaction worker attached:
    /// handoffs, journal replay and installs must be invisible to the
    /// analytics contract.
    #[test]
    fn background_compaction_is_invisible_to_analytics(
        (n, seed, stream) in arb_stream(32, 5, 40),
    ) {
        let base = erdos_renyi(n as usize, (n as usize) * 2, seed);
        let mut scratch = Scratch::new();
        let mut state = AnalyticsState::build(&base, &mut scratch);
        let mut g = DynamicGraph::new(base)
            .policy(CompactionPolicy::with_budget(8))
            .background_compaction();
        for (i, raw) in stream.iter().enumerate() {
            let (r, changes) = g.apply_batch_recorded(&to_ops(raw));
            state.apply_changes(&changes);
            prop_assert_eq!(state.triangles(), r.triangles, "diverged at batch {}", i);
            if i % 2 == 1 {
                // Periodically force the install so both the in-flight
                // and the installed phases get checked.
                g.wait_compaction();
            }
            let m = g.materialize();
            assert_state_matches(&state, &m, &mut scratch);
        }
    }

    /// Skewed power-law bases (the paper's workload shape), checked at
    /// stream end to afford bigger graphs.
    #[test]
    fn skewed_graphs_converge(
        (n, seed, stream) in arb_stream(150, 4, 100),
    ) {
        let base = power_law_configuration(n as usize, 2.2, 6.0, seed);
        let mut scratch = Scratch::new();
        let mut state = AnalyticsState::build(&base, &mut scratch);
        let mut g = DynamicGraph::new(base);
        for raw in &stream {
            let (_, changes) = g.apply_batch_recorded(&to_ops(raw));
            state.apply_changes(&changes);
        }
        let m = g.materialize();
        assert_state_matches(&state, &m, &mut scratch);
    }
}

/// Deterministic scripted stream: maintained state survives forced
/// compaction, and a replica maintained on a different compaction
/// schedule agrees exactly.
#[test]
fn compaction_schedules_do_not_affect_analytics() {
    let base = power_law_configuration(200, 2.1, 5.0, 0xA11A);
    let mut scratch = Scratch::new();
    let mut state_lazy = AnalyticsState::build(&base, &mut scratch);
    let mut state_eager = state_lazy.clone();
    let mut lazy =
        DynamicGraph::new(base.clone()).policy(CompactionPolicy::with_budget(usize::MAX));
    let mut eager = DynamicGraph::new(base).policy(CompactionPolicy::with_budget(1));

    for b in 0..8u32 {
        let mut ops = Vec::new();
        for i in 0..30u32 {
            let x = (b * 89 + i * 37) % 200;
            let y = (b * 41 + i * 13 + 1) % 200;
            ops.push(EdgeOp::Insert(x, y));
            if i % 4 == 0 {
                ops.push(EdgeOp::Delete(x, y));
            }
        }
        let (_, cl) = lazy.apply_batch_recorded(&ops);
        let (_, ce) = eager.apply_batch_recorded(&ops);
        assert_eq!(cl, ce, "recorded changes diverged at batch {b}");
        state_lazy.apply_changes(&cl);
        state_eager.apply_changes(&ce);
    }
    assert!(eager.counters().compactions > 0);
    let m = lazy.materialize();
    assert_eq!(m, eager.materialize());
    assert_eq!(
        state_lazy.supports_in_edge_order(&m),
        state_eager.supports_in_edge_order(&m)
    );
    assert_eq!(state_lazy.local_counts(), state_eager.local_counts());

    let fresh = AnalyticsState::build(&m, &mut scratch);
    assert_eq!(state_lazy.triangles(), fresh.triangles());
    assert_eq!(state_lazy.local_counts(), fresh.local_counts());
}
