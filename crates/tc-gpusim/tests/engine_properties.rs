//! Property tests for the discrete-event engine on randomized traces.

use proptest::prelude::*;
use tc_gpusim::ops::WarpOp;
use tc_gpusim::trace::{self, BlockTrace, SliceBlockSource, WarpTrace};
use tc_gpusim::{simulate, simulate_pipelined, simulate_pipelined_with_events, GpuConfig};

/// Strategy: a random warp trace without barriers (barrier counts must
/// agree across warps, handled separately).
fn arb_warp(max_ops: usize) -> impl Strategy<Value = WarpTrace> {
    prop::collection::vec(
        prop_oneof![
            (1u32..200).prop_map(WarpOp::Compute),
            (1u32..33).prop_map(|segments| WarpOp::GlobalAccess { segments }),
            (1u32..8).prop_map(|transactions| WarpOp::SharedAccess { transactions }),
        ],
        0..max_ops,
    )
    .prop_map(WarpTrace::new)
}

fn arb_blocks(max_blocks: usize) -> impl Strategy<Value = Vec<BlockTrace>> {
    prop::collection::vec(
        prop::collection::vec(arb_warp(12), 1..5).prop_map(BlockTrace::new),
        0..max_blocks,
    )
}

/// Strategy: random blocks where every warp additionally runs a common
/// number of `BlockSync` barriers (consistency is required by the engine).
fn arb_barrier_blocks(max_blocks: usize) -> impl Strategy<Value = Vec<BlockTrace>> {
    prop::collection::vec(
        (prop::collection::vec(arb_warp(8), 1..5), 0usize..3).prop_map(|(warps, syncs)| {
            let warps = warps
                .into_iter()
                .map(|w| {
                    let mut ops = w.ops;
                    for _ in 0..syncs {
                        ops.push(WarpOp::BlockSync);
                    }
                    WarpTrace::new(ops)
                })
                .collect();
            BlockTrace::new(warps)
        }),
        0..max_blocks,
    )
}

fn total_compute(blocks: &[BlockTrace]) -> u64 {
    blocks
        .iter()
        .map(|b| trace::compute_cycles(b.all_ops()))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same trace, same GPU → identical metrics.
    #[test]
    fn deterministic(blocks in arb_blocks(12)) {
        let src = SliceBlockSource::new(blocks);
        let gpu = GpuConfig::titan_xp_like();
        prop_assert_eq!(simulate(&gpu, &src), simulate(&gpu, &src));
    }

    /// The makespan can never beat the per-SM compute lower bound: total
    /// compute work divided by aggregate throughput.
    #[test]
    fn makespan_respects_compute_lower_bound(blocks in arb_blocks(10)) {
        let gpu = GpuConfig::tiny(); // 1 SM, throughput 1.0
        let lower = total_compute(&blocks);
        let src = SliceBlockSource::new(blocks);
        let m = simulate(&gpu, &src);
        prop_assert!(
            m.kernel_cycles >= lower,
            "makespan {} below compute bound {}", m.kernel_cycles, lower
        );
    }

    /// Doubling compute throughput never increases the makespan.
    #[test]
    fn faster_compute_never_hurts(blocks in arb_blocks(10)) {
        let src = SliceBlockSource::new(blocks);
        let slow = GpuConfig::tiny();
        let mut fast = GpuConfig::tiny();
        fast.compute_throughput = 2.0;
        prop_assert!(
            simulate(&fast, &src).kernel_cycles <= simulate(&slow, &src).kernel_cycles
        );
    }

    /// Metrics conserve the trace's op totals exactly.
    #[test]
    fn metrics_conserve_op_totals(blocks in arb_blocks(10)) {
        let compute: u64 = total_compute(&blocks);
        let global: u64 = blocks.iter().flat_map(|b| b.all_ops().iter())
            .map(|op| match op { WarpOp::GlobalAccess { segments } => *segments as u64, _ => 0 })
            .sum();
        let src = SliceBlockSource::new(blocks);
        let m = simulate(&GpuConfig::titan_xp_like(), &src);
        prop_assert_eq!(m.compute_cycles, compute);
        prop_assert_eq!(m.global_segments, global);
    }

    /// The parallel trace-generation pipeline is bit-for-bit identical to
    /// the serial engine at every worker count: cycle counts, op totals,
    /// barrier waits, and per-block lifetimes all match.
    #[test]
    fn pipelined_simulation_matches_serial(blocks in arb_barrier_blocks(16)) {
        let gpu = GpuConfig::titan_xp_like();
        let src = SliceBlockSource::new(blocks);
        let serial = simulate(&gpu, &src);
        for threads in [1usize, 2, 8] {
            let piped = simulate_pipelined(&gpu, &src, threads);
            prop_assert_eq!(&piped, &serial);
        }
        let (m1, e1) = tc_gpusim::simulate_with_events(&gpu, &src);
        let (m2, e2) = simulate_pipelined_with_events(&gpu, &src, 8);
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(e1, e2);
    }

    /// Appending one more non-empty block never reduces the makespan.
    #[test]
    fn more_work_never_finishes_earlier(
        blocks in arb_blocks(8),
        extra in arb_warp(8).prop_filter("non-empty", |w| !w.ops.is_empty()),
    ) {
        let gpu = GpuConfig::tiny();
        let base = simulate(&gpu, &SliceBlockSource::new(blocks.clone())).kernel_cycles;
        let mut more = blocks;
        more.push(BlockTrace::new(vec![extra]));
        let extended = simulate(&gpu, &SliceBlockSource::new(more)).kernel_cycles;
        prop_assert!(extended >= base, "extended {extended} < base {base}");
    }
}
