//! Property tests for the discrete-event engine on randomized traces.

use proptest::prelude::*;
use tc_gpusim::ops::WarpOp;
use tc_gpusim::trace::{BlockTrace, SliceBlockSource, WarpTrace};
use tc_gpusim::{simulate, GpuConfig};

/// Strategy: a random warp trace without barriers (barrier counts must
/// agree across warps, handled separately).
fn arb_warp(max_ops: usize) -> impl Strategy<Value = WarpTrace> {
    prop::collection::vec(
        prop_oneof![
            (1u32..200).prop_map(WarpOp::Compute),
            (1u32..33).prop_map(|segments| WarpOp::GlobalAccess { segments }),
            (1u32..8).prop_map(|transactions| WarpOp::SharedAccess { transactions }),
        ],
        0..max_ops,
    )
    .prop_map(WarpTrace::new)
}

fn arb_blocks(max_blocks: usize) -> impl Strategy<Value = Vec<BlockTrace>> {
    prop::collection::vec(
        prop::collection::vec(arb_warp(12), 1..5).prop_map(BlockTrace::new),
        0..max_blocks,
    )
}

fn total_compute(blocks: &[BlockTrace]) -> u64 {
    blocks
        .iter()
        .flat_map(|b| b.warps.iter())
        .map(WarpTrace::compute_cycles)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same trace, same GPU → identical metrics.
    #[test]
    fn deterministic(blocks in arb_blocks(12)) {
        let src = SliceBlockSource::new(blocks);
        let gpu = GpuConfig::titan_xp_like();
        prop_assert_eq!(simulate(&gpu, &src), simulate(&gpu, &src));
    }

    /// The makespan can never beat the per-SM compute lower bound: total
    /// compute work divided by aggregate throughput.
    #[test]
    fn makespan_respects_compute_lower_bound(blocks in arb_blocks(10)) {
        let gpu = GpuConfig::tiny(); // 1 SM, throughput 1.0
        let lower = total_compute(&blocks);
        let src = SliceBlockSource::new(blocks);
        let m = simulate(&gpu, &src);
        prop_assert!(
            m.kernel_cycles >= lower,
            "makespan {} below compute bound {}", m.kernel_cycles, lower
        );
    }

    /// Doubling compute throughput never increases the makespan.
    #[test]
    fn faster_compute_never_hurts(blocks in arb_blocks(10)) {
        let src = SliceBlockSource::new(blocks);
        let slow = GpuConfig::tiny();
        let mut fast = GpuConfig::tiny();
        fast.compute_throughput = 2.0;
        prop_assert!(
            simulate(&fast, &src).kernel_cycles <= simulate(&slow, &src).kernel_cycles
        );
    }

    /// Metrics conserve the trace's op totals exactly.
    #[test]
    fn metrics_conserve_op_totals(blocks in arb_blocks(10)) {
        let compute: u64 = total_compute(&blocks);
        let global: u64 = blocks.iter().flat_map(|b| b.warps.iter())
            .flat_map(|w| w.ops.iter())
            .map(|op| match op { WarpOp::GlobalAccess { segments } => *segments as u64, _ => 0 })
            .sum();
        let src = SliceBlockSource::new(blocks);
        let m = simulate(&GpuConfig::titan_xp_like(), &src);
        prop_assert_eq!(m.compute_cycles, compute);
        prop_assert_eq!(m.global_segments, global);
    }

    /// Appending one more non-empty block never reduces the makespan.
    #[test]
    fn more_work_never_finishes_earlier(
        blocks in arb_blocks(8),
        extra in arb_warp(8).prop_filter("non-empty", |w| !w.ops.is_empty()),
    ) {
        let gpu = GpuConfig::tiny();
        let base = simulate(&gpu, &SliceBlockSource::new(blocks.clone())).kernel_cycles;
        let mut more = blocks;
        more.push(BlockTrace::new(vec![extra]));
        let extended = simulate(&gpu, &SliceBlockSource::new(more)).kernel_cycles;
        prop_assert!(extended >= base, "extended {extended} < base {base}");
    }
}
