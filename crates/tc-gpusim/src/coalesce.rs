//! The global-memory coalescing model.
//!
//! A warp's global-memory access is served in 128-byte transactions
//! ("segments"). If the 32 lanes read 32 consecutive 4-byte words the whole
//! access is one transaction; if they read scattered words it takes up to
//! 32. This is the mechanism behind the paper's Figures 4 and 5: binary
//! search over a *short* list keeps all lanes inside one segment, binary
//! search over a *long* list scatters them — which is exactly what makes
//! long lists memory-intensive and short lists compute-intensive.

/// 4-byte words per 128-byte transaction.
pub const WORDS_PER_SEGMENT: u64 = 32;

/// Number of distinct 128-byte segments touched by a warp reading the given
/// word addresses (element indices into a `u32` array).
///
/// Addresses may arrive in any order; inactive lanes are simply absent.
/// Returns 0 for an empty access.
pub fn segments_for_addresses<I: IntoIterator<Item = u64>>(addresses: I) -> u32 {
    // A warp has at most 32 lanes, so a tiny on-stack set beats hashing.
    let mut seen = [u64::MAX; 32];
    let mut count = 0u32;
    for addr in addresses {
        let seg = addr / WORDS_PER_SEGMENT;
        if !seen[..count as usize].contains(&seg) {
            seen[count as usize] = seg;
            count += 1;
        }
    }
    count
}

/// Segments for a warp reading `lanes` consecutive words starting at
/// `start` (the pattern of a cooperative, perfectly coalesced copy loop).
pub fn segments_for_contiguous(start: u64, lanes: u64) -> u32 {
    if lanes == 0 {
        return 0;
    }
    let first = start / WORDS_PER_SEGMENT;
    let last = (start + lanes - 1) / WORDS_PER_SEGMENT;
    (last - first + 1) as u32
}

/// Segments when all active lanes of a warp probe *independent uniformly
/// scattered* positions in a list of `len` words starting at `base`.
///
/// Used by trace generators when modelling a batch of unrelated binary
/// searches at the same depth: lanes at iteration `i` are spread over the
/// whole list, so the expected number of distinct segments is
/// `min(active_lanes, ceil(len / 32))` in the worst case. We charge the
/// deterministic upper envelope rather than sampling — the simulator must
/// stay randomness-free.
pub fn segments_for_scattered(len: u64, active_lanes: u32) -> u32 {
    if len == 0 || active_lanes == 0 {
        return 0;
    }
    let segments_in_list = len.div_ceil(WORDS_PER_SEGMENT);
    (active_lanes as u64).min(segments_in_list) as u32
}

/// Number of shared-memory banks (one 4-byte word wide each).
pub const NUM_BANKS: u64 = 32;

/// Result of resolving a warp's shared-memory access against the banks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankAccess {
    /// Serialized transactions: the maximum number of *distinct words* any
    /// single bank must deliver (same-word broadcasts are free).
    pub transactions: u32,
    /// Distinct words touched across the warp — the actual bytes moved are
    /// `4 × distinct_words`.
    pub distinct_words: u32,
}

/// Resolves a warp's shared-memory word addresses against the 32-bank
/// model: lanes reading the *same* word broadcast (free); lanes reading
/// *different* words in the same bank serialize.
pub fn bank_transactions<I: IntoIterator<Item = u64>>(addresses: I) -> BankAccess {
    // At most 32 lanes: flat arrays beat hashing.
    let mut words = [u64::MAX; 32];
    let mut word_count = 0usize;
    for addr in addresses {
        if !words[..word_count].contains(&addr) {
            words[word_count] = addr;
            word_count += 1;
        }
    }
    let mut per_bank = [0u32; NUM_BANKS as usize];
    for &w in &words[..word_count] {
        per_bank[(w % NUM_BANKS) as usize] += 1;
    }
    BankAccess {
        transactions: per_bank.iter().copied().max().unwrap_or(0),
        distinct_words: word_count as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_words_coalesce_to_one_segment() {
        assert_eq!(segments_for_addresses(0..32), 1);
    }

    #[test]
    fn straddling_segment_boundary_costs_two() {
        assert_eq!(segments_for_addresses(16..48), 2);
    }

    #[test]
    fn fully_scattered_costs_one_each() {
        // Lanes 32 words apart: every lane in its own segment.
        assert_eq!(segments_for_addresses((0..32).map(|i| i * 32)), 32);
    }

    #[test]
    fn duplicate_addresses_are_free() {
        assert_eq!(segments_for_addresses([5, 5, 5, 6].into_iter()), 1);
    }

    #[test]
    fn empty_access_costs_nothing() {
        assert_eq!(segments_for_addresses(std::iter::empty()), 0);
        assert_eq!(segments_for_contiguous(0, 0), 0);
        assert_eq!(segments_for_scattered(0, 32), 0);
    }

    #[test]
    fn contiguous_matches_explicit_enumeration() {
        for start in [0u64, 7, 31, 32, 100] {
            for lanes in [1u64, 2, 31, 32] {
                assert_eq!(
                    segments_for_contiguous(start, lanes),
                    segments_for_addresses(start..start + lanes),
                    "start={start} lanes={lanes}"
                );
            }
        }
    }

    #[test]
    fn scattered_saturates_at_list_size() {
        // A 33-word list spans 2 segments; even 32 lanes can't touch more.
        assert_eq!(segments_for_scattered(33, 32), 2);
        // A huge list: every active lane pays its own segment.
        assert_eq!(segments_for_scattered(1 << 20, 32), 32);
        // Few active lanes: bounded by lanes.
        assert_eq!(segments_for_scattered(1 << 20, 3), 3);
    }

    #[test]
    fn broadcast_is_one_transaction() {
        let a = bank_transactions([7u64; 32]);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.distinct_words, 1);
    }

    #[test]
    fn conflict_free_stride_one_is_one_transaction() {
        let a = bank_transactions(0..32u64);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.distinct_words, 32);
    }

    #[test]
    fn same_bank_different_words_serialize() {
        // Words 0, 32, 64 all live in bank 0.
        let a = bank_transactions([0u64, 32, 64]);
        assert_eq!(a.transactions, 3);
        assert_eq!(a.distinct_words, 3);
    }

    #[test]
    fn empty_bank_access() {
        let a = bank_transactions(std::iter::empty());
        assert_eq!(a.transactions, 0);
        assert_eq!(a.distinct_words, 0);
    }

    #[test]
    fn short_list_is_cheap_long_list_expensive() {
        // The crux of the paper's Figure 4: same search count, different cost.
        let short = segments_for_scattered(32, 32);
        let long = segments_for_scattered(4096, 32);
        assert_eq!(short, 1);
        assert_eq!(long, 32);
    }
}
