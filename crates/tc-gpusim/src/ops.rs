//! Warp-level operations: the instruction set of the simulator.

/// One warp-level operation.
///
/// Trace generators in `tc-algos` translate their CUDA kernels into streams
/// of these. The granularity is deliberately coarse — a warp executes in
/// lock step, so one op describes all 32 lanes at once. SIMT divergence is
/// the *generator's* responsibility: a divergent branch serializes its
/// paths, so the generator emits the summed compute cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarpOp {
    /// Pure computation occupying the SM's compute pipeline for the given
    /// number of warp-cycles.
    Compute(u32),
    /// A global-memory access by the whole warp that coalesced into the
    /// given number of 128-byte transactions (see [`crate::coalesce`]).
    GlobalAccess {
        /// Memory transactions after coalescing (1..=32 per access).
        segments: u32,
    },
    /// A shared-memory access costing the given number of transactions
    /// (bank conflicts serialize, so a conflicted access costs more).
    SharedAccess {
        /// Shared-memory transactions (1 if conflict-free).
        transactions: u32,
    },
    /// `__syncthreads()`: barrier across all warps of the block. The
    /// superstep ends when the slowest warp arrives — the paper's
    /// intra-block BSP model.
    BlockSync,
}

impl WarpOp {
    /// Whether this op touches a memory pipeline.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            WarpOp::GlobalAccess { .. } | WarpOp::SharedAccess { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(WarpOp::GlobalAccess { segments: 1 }.is_memory());
        assert!(WarpOp::SharedAccess { transactions: 2 }.is_memory());
        assert!(!WarpOp::Compute(5).is_memory());
        assert!(!WarpOp::BlockSync.is_memory());
    }
}
