//! Deterministic discrete-event GPU timing simulator.
//!
//! The paper evaluates on an NVIDIA Titan Xp; this workspace has no GPU, so
//! timing comes from this simulator instead. It models exactly the
//! architectural mechanisms the paper's two analytic models rest on:
//!
//! 1. **Intra-block BSP** — [`WarpOp::BlockSync`] is a barrier across a
//!    block's warps, so a superstep costs as much as its slowest warp. This
//!    is the mechanism behind the paper's *workload imbalance* model
//!    (Section 3.1) and the reason edge directing matters.
//! 2. **Compute/memory resource split** — each SM owns a compute server and
//!    memory servers (global and shared) with independent throughput, plus
//!    memory latency that other warps can hide. Binary search over a long
//!    list coalesces poorly ([`coalesce`]) and saturates the memory server;
//!    short lists are compute-bound. Mixing the two inside one SM overlaps
//!    the servers — the paper's *resource balance* model (Section 3.2) and
//!    the reason vertex ordering matters.
//!
//! Algorithms in `tc-algos` describe their CUDA kernels as warp-level op
//! streams ([`BlockSource`]); [`simulate`] runs them and reports cycles and
//! detailed [`KernelMetrics`]. The engine uses no wall-clock and no
//! randomness: identical traces give identical cycle counts on every run.

pub mod coalesce;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod occupancy;
pub mod ops;
pub mod pipeline;
pub mod profiler;
pub mod search;
pub mod timeline;
pub mod trace;

pub use config::GpuConfig;
pub use engine::{simulate, simulate_with_events, BlockEvent};
pub use metrics::KernelMetrics;
pub use ops::WarpOp;
pub use pipeline::{simulate_pipelined, simulate_pipelined_auto, simulate_pipelined_with_events};
pub use trace::{BlockSource, BlockTrace, BlockTraceBuilder, SliceBlockSource, WarpTrace};

/// Simulated cycle count.
pub type Cycles = u64;

/// Element type of the adjacency arrays the kernels search. Kept local so
/// this crate stays independent of `tc-graph` (the simulator knows nothing
/// about graphs, only about op streams).
pub type VertexId32 = u32;
