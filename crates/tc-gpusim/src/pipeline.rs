//! Parallel trace-generation pipeline.
//!
//! Profiling showed the simulator spends most of its wall-clock *generating*
//! block traces (real CPU traversals of the graph), not simulating them: the
//! discrete-event engine is cheap, the [`BlockSource::block`] calls are not.
//! Trace generation is embarrassingly parallel — each block's trace depends
//! only on the graph and the block index — while the event engine is
//! inherently serial. So this module splits them:
//!
//! ```text
//!  worker 0 ──┐
//!  worker 1 ──┼──▶ bounded reorder buffer ──▶ engine (single thread)
//!  worker N ──┘      (grid order)
//! ```
//!
//! Workers claim block indices from a shared atomic counter, generate each
//! block's trace, and deposit it into a bounded ring buffer slot keyed by
//! `index % capacity`. The engine drains the buffer **strictly in grid
//! order** through a [`BlockSource`] adapter.
//!
//! # Determinism
//!
//! Simulated cycle counts are bit-for-bit identical to a serial
//! [`crate::simulate`] run, by construction rather than by luck:
//!
//! 1. Sources are required to be deterministic functions of the block index
//!    (already part of the [`BlockSource`] contract), so workers produce the
//!    same traces a serial run would, regardless of which worker runs which
//!    index.
//! 2. The engine consumes blocks in grid order — the adapter's `block(idx)`
//!    blocks until trace `idx` is present, no matter which traces finished
//!    first. The engine itself is untouched and single-threaded; thread
//!    scheduling can change *when* a trace becomes available, never *what*
//!    the engine observes.
//!
//! The property suite asserts `simulate == simulate_pipelined` for threads
//! 1, 2, and 8 over randomized traces.
//!
//! # Sizing
//!
//! Thread count defaults to [`std::thread::available_parallelism`], clamped
//! by the `TC_PIPELINE_THREADS` environment variable (or an explicit
//! [`set_thread_override`], which takes precedence and is what the benches
//! use to compare serial vs pipelined in one process). The reorder buffer
//! holds `2 × threads` traces, bounding memory while keeping workers busy
//! when block costs are skewed.

use crate::config::GpuConfig;
use crate::engine::{simulate, simulate_with_events, BlockEvent};
use crate::metrics::KernelMetrics;
use crate::trace::{BlockSource, BlockTrace};
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "TC_PIPELINE_THREADS";

/// Process-wide thread override (0 = none). Takes precedence over the
/// environment; lets a benchmark flip serial/pipelined without re-execing.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the pipeline thread count for this process (`None` restores
/// env/auto selection). `Some(1)` means "run serially".
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The worker-thread count [`simulate_pipelined_auto`] will use:
/// the [`set_thread_override`] value if set, else `TC_PIPELINE_THREADS`
/// if set and parseable, else [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Reorder buffer shared between generator workers and the engine thread.
struct Shared {
    /// Next block index not yet claimed by any worker.
    next: AtomicUsize,
    /// Ring capacity (admission window size).
    cap: usize,
    state: Mutex<Buffer>,
    /// Signalled when a trace lands in the buffer (engine waits on this).
    filled: Condvar,
    /// Signalled when the engine consumes a trace or stops (workers wait
    /// on this).
    drained: Condvar,
}

struct Buffer {
    /// Ring of generated traces; block `idx` lives in `ring[idx % cap]`.
    ring: Vec<Option<BlockTrace>>,
    /// Next block index the engine will consume; defines the admission
    /// window `[consumed, consumed + cap)`.
    consumed: usize,
    /// Set when a worker panics, so the engine fails fast instead of
    /// waiting forever for a trace that will never arrive.
    worker_panicked: bool,
    /// Set when the engine has stopped (normally or by panic), so workers
    /// parked on the admission window exit instead of waiting forever.
    consumer_done: bool,
}

impl Shared {
    fn new(capacity: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            cap: capacity,
            state: Mutex::new(Buffer {
                ring: (0..capacity).map(|_| None).collect(),
                consumed: 0,
                worker_panicked: false,
                consumer_done: false,
            }),
            filled: Condvar::new(),
            drained: Condvar::new(),
        }
    }
}

/// Marks the pipeline poisoned if the holding worker unwinds, then wakes
/// the engine so it can re-raise instead of deadlocking.
struct WorkerGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut st) = self.shared.state.lock() {
                st.worker_panicked = true;
            }
            self.shared.filled.notify_all();
            self.shared.drained.notify_all();
        }
    }
}

/// Marks the engine stopped when its closure exits — normally or by
/// unwinding (e.g. a barrier-consistency assertion) — so parked workers
/// wake and the scope join cannot deadlock.
struct ConsumerGuard<'a> {
    shared: &'a Shared,
}

impl Drop for ConsumerGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.consumer_done = true;
        }
        self.shared.drained.notify_all();
    }
}

fn worker<S: BlockSource + ?Sized>(shared: &Shared, source: &S, num_blocks: usize) {
    let cap = shared.cap;
    let mut guard = WorkerGuard {
        shared,
        armed: true,
    };
    loop {
        let idx = shared.next.fetch_add(1, Ordering::Relaxed);
        if idx >= num_blocks {
            break;
        }
        // Admission control: generate only once `idx` fits in the window,
        // so at most `cap` traces are in flight beyond the engine's cursor.
        {
            let mut st = shared.state.lock().expect("pipeline lock");
            loop {
                if st.worker_panicked || st.consumer_done {
                    guard.armed = false; // pipeline is already shutting down
                    return;
                }
                if idx < st.consumed + cap {
                    break;
                }
                st = shared.drained.wait(st).expect("pipeline lock");
            }
        }
        let trace = source.block(idx).into_owned();
        let mut st = shared.state.lock().expect("pipeline lock");
        debug_assert!(st.ring[idx % cap].is_none(), "ring slot collision");
        st.ring[idx % cap] = Some(trace);
        drop(st);
        shared.filled.notify_all();
    }
    guard.armed = false;
}

/// [`BlockSource`] adapter the engine runs against: `block(idx)` hands out
/// trace `idx` as soon as a worker has deposited it. The engine requests
/// indices strictly in grid order (asserted), which is what makes the
/// pipelined run observationally identical to the serial one.
struct PrefetchedSource<'a> {
    shared: &'a Shared,
    num_blocks: usize,
}

impl BlockSource for PrefetchedSource<'_> {
    fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    fn block(&self, idx: usize) -> Cow<'_, BlockTrace> {
        let cap = self.shared.cap;
        let mut st = self.shared.state.lock().expect("pipeline lock");
        assert_eq!(idx, st.consumed, "engine must consume blocks in grid order");
        loop {
            if st.worker_panicked {
                panic!("trace-generation worker panicked");
            }
            if st.ring[idx % cap].is_some() {
                break;
            }
            st = self.shared.filled.wait(st).expect("pipeline lock");
        }
        let trace = st.ring[idx % cap].take().expect("checked above");
        st.consumed = idx + 1;
        drop(st);
        self.shared.drained.notify_all();
        Cow::Owned(trace)
    }
}

/// Runs `source` on the configured GPU with `threads` trace-generation
/// workers. Returns metrics bit-for-bit identical to [`simulate`].
///
/// `threads <= 1` falls back to the serial engine (no worker threads, no
/// queue). The source must be `Sync`: workers generate blocks concurrently.
pub fn simulate_pipelined<S>(config: &GpuConfig, source: &S, threads: usize) -> KernelMetrics
where
    S: BlockSource + Sync + ?Sized,
{
    run_pipelined(config, source, threads, false).0
}

/// [`simulate_pipelined`] + per-block lifetime events, mirroring
/// [`simulate_with_events`].
pub fn simulate_pipelined_with_events<S>(
    config: &GpuConfig,
    source: &S,
    threads: usize,
) -> (KernelMetrics, Vec<BlockEvent>)
where
    S: BlockSource + Sync + ?Sized,
{
    let (metrics, events) = run_pipelined(config, source, threads, true);
    (metrics, events.expect("event collection requested"))
}

/// [`simulate_pipelined`] with the thread count from
/// [`configured_threads`] (override → `TC_PIPELINE_THREADS` → all cores).
pub fn simulate_pipelined_auto<S>(config: &GpuConfig, source: &S) -> KernelMetrics
where
    S: BlockSource + Sync + ?Sized,
{
    simulate_pipelined(config, source, configured_threads())
}

fn run_pipelined<S>(
    config: &GpuConfig,
    source: &S,
    threads: usize,
    collect_events: bool,
) -> (KernelMetrics, Option<Vec<BlockEvent>>)
where
    S: BlockSource + Sync + ?Sized,
{
    let num_blocks = source.num_blocks();
    // Below this grid size thread startup dwarfs generation; serial wins.
    const MIN_BLOCKS_FOR_PIPELINE: usize = 4;
    if threads <= 1 || num_blocks < MIN_BLOCKS_FOR_PIPELINE {
        return if collect_events {
            let (m, e) = simulate_with_events(config, source);
            (m, Some(e))
        } else {
            (simulate(config, source), None)
        };
    }
    let workers = threads.min(num_blocks);
    let shared = Shared::new(workers * 2);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker(&shared, source, num_blocks));
        }
        let _stop = ConsumerGuard { shared: &shared };
        let prefetched = PrefetchedSource {
            shared: &shared,
            num_blocks,
        };
        if collect_events {
            let (m, e) = simulate_with_events(config, &prefetched);
            (m, Some(e))
        } else {
            (simulate(config, &prefetched), None)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WarpOp;
    use crate::trace::{SliceBlockSource, WarpTrace};

    fn sample_blocks(n: usize) -> Vec<BlockTrace> {
        (0..n)
            .map(|i| {
                let i = i as u32;
                BlockTrace::new(vec![
                    WarpTrace::new(vec![
                        WarpOp::Compute(1 + i % 13),
                        WarpOp::GlobalAccess {
                            segments: 1 + i % 5,
                        },
                        WarpOp::BlockSync,
                        WarpOp::Compute(2 + i % 7),
                    ]),
                    WarpTrace::new(vec![
                        WarpOp::SharedAccess {
                            transactions: 1 + i % 3,
                        },
                        WarpOp::BlockSync,
                        WarpOp::Compute(1),
                    ]),
                ])
            })
            .collect()
    }

    #[test]
    fn pipelined_matches_serial() {
        let src = SliceBlockSource::new(sample_blocks(64));
        let config = GpuConfig::tiny();
        let serial = simulate(&config, &src);
        for threads in [1, 2, 3, 8] {
            let piped = simulate_pipelined(&config, &src, threads);
            assert_eq!(piped, serial, "threads={threads}");
        }
    }

    #[test]
    fn pipelined_events_match_serial() {
        let src = SliceBlockSource::new(sample_blocks(32));
        let config = GpuConfig::tiny();
        let (sm, se) = simulate_with_events(&config, &src);
        let (pm, pe) = simulate_pipelined_with_events(&config, &src, 4);
        assert_eq!(pm, sm);
        assert_eq!(pe, se);
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let src = SliceBlockSource::new(sample_blocks(5));
        let config = GpuConfig::tiny();
        assert_eq!(
            simulate_pipelined(&config, &src, 64),
            simulate(&config, &src)
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let src = SliceBlockSource::new(Vec::new());
        let m = simulate_pipelined(&GpuConfig::tiny(), &src, 4);
        assert_eq!(m.kernel_cycles, 0);
    }

    #[test]
    fn thread_override_wins() {
        // Serialize: this test mutates process-global state, but the
        // override is restored before returning and other tests only read
        // it through simulate calls with explicit thread counts.
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn engine_panic_does_not_deadlock() {
        // An inconsistent-barrier block trips the engine's assertion on the
        // consumer side while workers are parked on the admission window;
        // the panic must propagate out of the scope, not hang the join.
        let bad = BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::BlockSync]),
            WarpTrace::new(vec![WarpOp::Compute(1)]),
        ]);
        let blocks: Vec<BlockTrace> = (0..32).map(|_| bad.clone()).collect();
        let src = SliceBlockSource::new(blocks);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            simulate_pipelined(&GpuConfig::tiny(), &src, 4);
        }));
        assert!(result.is_err(), "engine panic must surface, not deadlock");
    }

    #[test]
    fn worker_panic_propagates() {
        struct Bomb;
        impl BlockSource for Bomb {
            fn num_blocks(&self) -> usize {
                16
            }
            fn block(&self, idx: usize) -> Cow<'_, BlockTrace> {
                if idx == 7 {
                    panic!("boom");
                }
                Cow::Owned(BlockTrace::new(vec![WarpTrace::new(vec![
                    WarpOp::Compute(1),
                ])]))
            }
        }
        let result = std::panic::catch_unwind(|| {
            simulate_pipelined(&GpuConfig::tiny(), &Bomb, 4);
        });
        assert!(result.is_err(), "worker panic must surface, not deadlock");
    }
}
