//! Simulated GPU hardware parameters.

/// Number of threads in a warp. Fixed at 32 on every NVIDIA architecture
/// the paper considers; kernels and the coalescing model assume it.
pub const WARP_SIZE: usize = 32;

/// Parameters of the simulated GPU.
///
/// The defaults ([`GpuConfig::titan_xp_like`]) approximate the Titan Xp the
/// paper used: 30 SMs, 128-byte memory transactions, a few hundred cycles
/// of global-memory latency, and a shared-memory path roughly an order of
/// magnitude faster than global memory. Absolute values shift measured
/// times but not the phenomena; tests in `tc-bench` verify the paper's
/// *relative* results hold across a range of configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Warps per block (threads per block = 32 × this).
    pub warps_per_block: usize,
    /// Blocks co-resident on one SM. Low residency strengthens the paper's
    /// block-granularity resource arguments; 2 matches kernels with heavy
    /// shared-memory footprints.
    pub blocks_per_sm: usize,
    /// Warp-instructions the compute pipeline retires per cycle.
    pub compute_throughput: f64,
    /// Global-memory transactions (128-byte segments) served per cycle.
    pub global_bw: f64,
    /// Global-memory latency in cycles (overlappable by other warps).
    pub global_latency: u64,
    /// Shared-memory transactions served per cycle.
    pub shared_bw: f64,
    /// Shared-memory latency in cycles.
    pub shared_latency: u64,
    /// Clock in GHz, used only to convert cycles to milliseconds for
    /// reporting alongside the paper's tables.
    pub clock_ghz: f64,
}

impl GpuConfig {
    /// A Titan-Xp-like configuration (the paper's testbed).
    pub fn titan_xp_like() -> Self {
        Self {
            num_sms: 30,
            warps_per_block: 8,
            blocks_per_sm: 2,
            compute_throughput: 1.0,
            global_bw: 0.5,
            global_latency: 400,
            shared_bw: 4.0,
            shared_latency: 24,
            clock_ghz: 1.4,
        }
    }

    /// A deliberately tiny GPU for unit tests: one SM, one block slot, two
    /// warps per block — small enough to hand-compute schedules.
    pub fn tiny() -> Self {
        Self {
            num_sms: 1,
            warps_per_block: 2,
            blocks_per_sm: 1,
            compute_throughput: 1.0,
            global_bw: 1.0,
            global_latency: 100,
            shared_bw: 4.0,
            shared_latency: 10,
            clock_ghz: 1.0,
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.warps_per_block * WARP_SIZE
    }

    /// A copy of this configuration with the given block residency —
    /// kernels with small register/shared-memory footprints (TriCore,
    /// Gunrock, Polak, Fox) co-schedule more blocks per SM than
    /// shared-memory-heavy ones (Hu, Bisson), exactly as the CUDA
    /// occupancy calculator would decide.
    pub fn with_blocks_per_sm(&self, blocks: usize) -> Self {
        Self {
            blocks_per_sm: blocks.max(1),
            ..self.clone()
        }
    }

    /// Converts simulated cycles to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e6)
    }

    /// Panics if any parameter is degenerate (zero resources).
    pub fn validate(&self) {
        assert!(self.num_sms >= 1, "need at least one SM");
        assert!(self.warps_per_block >= 1, "need at least one warp");
        assert!(self.blocks_per_sm >= 1, "need at least one block slot");
        assert!(
            self.compute_throughput > 0.0,
            "compute throughput must be positive"
        );
        assert!(
            self.global_bw > 0.0 && self.shared_bw > 0.0,
            "bandwidth must be positive"
        );
        assert!(self.clock_ghz > 0.0, "clock must be positive");
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::titan_xp_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        GpuConfig::titan_xp_like().validate();
        GpuConfig::tiny().validate();
    }

    #[test]
    fn cycles_to_ms_at_one_ghz() {
        let mut c = GpuConfig::tiny();
        c.clock_ghz = 1.0;
        assert!((c.cycles_to_ms(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threads_per_block_is_warps_times_32() {
        assert_eq!(GpuConfig::titan_xp_like().threads_per_block(), 256);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        let mut c = GpuConfig::tiny();
        c.num_sms = 0;
        c.validate();
    }
}
