//! A CUDA-occupancy-calculator analogue: how many blocks co-reside on an
//! SM given the kernel's resource footprint.
//!
//! The experiments give shared-memory-heavy kernels (Hu, Bisson) low
//! residency and lean kernels (TriCore, Gunrock, Polak, Fox) high
//! residency; this module derives those numbers from declared footprints
//! instead of hard-coding them, the way `cudaOccupancyMaxActiveBlocksPerMultiprocessor`
//! would.

use crate::config::GpuConfig;

/// Per-SM hardware limits (Pascal-class defaults, matching the Titan Xp
/// the paper used).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmLimits {
    /// Shared memory per SM, bytes.
    pub shared_bytes: u32,
    /// Registers per SM.
    pub registers: u32,
    /// Maximum resident warps.
    pub max_warps: u32,
    /// Maximum resident blocks.
    pub max_blocks: u32,
}

impl Default for SmLimits {
    fn default() -> Self {
        Self {
            shared_bytes: 96 * 1024,
            registers: 64 * 1024,
            max_warps: 64,
            max_blocks: 32,
        }
    }
}

/// A kernel's per-block resource footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelFootprint {
    /// Shared memory per block, bytes.
    pub shared_bytes_per_block: u32,
    /// Registers per thread.
    pub registers_per_thread: u32,
    /// Warps per block.
    pub warps_per_block: u32,
}

/// Maximum co-resident blocks per SM for the given footprint — the
/// minimum over the shared-memory, register, warp-slot, and block-slot
/// constraints. Returns 0 if even a single block cannot fit.
pub fn max_blocks_per_sm(limits: &SmLimits, kernel: &KernelFootprint) -> u32 {
    let by_shared = limits
        .shared_bytes
        .checked_div(kernel.shared_bytes_per_block)
        .unwrap_or(u32::MAX);
    let regs_per_block = kernel.registers_per_thread * kernel.warps_per_block * 32;
    let by_regs = limits
        .registers
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_warps = limits
        .max_warps
        .checked_div(kernel.warps_per_block)
        .unwrap_or(u32::MAX);
    by_shared.min(by_regs).min(by_warps).min(limits.max_blocks)
}

/// Applies a kernel footprint to a GPU configuration: the returned config
/// runs with the occupancy the footprint permits (at least 1).
pub fn configure_for_kernel(
    gpu: &GpuConfig,
    limits: &SmLimits,
    kernel: &KernelFootprint,
) -> GpuConfig {
    gpu.with_blocks_per_sm(max_blocks_per_sm(limits, kernel).max(1) as usize)
}

/// Footprint of a shared-memory staging kernel like Hu's: a full staging
/// buffer (48 KB) plus moderate registers.
pub fn staging_kernel_footprint(warps_per_block: usize) -> KernelFootprint {
    KernelFootprint {
        shared_bytes_per_block: 48 * 1024,
        registers_per_thread: 32,
        warps_per_block: warps_per_block as u32,
    }
}

/// Footprint of a lean warp-per-edge kernel like TriCore: no shared
/// memory to speak of, few registers.
pub fn lean_kernel_footprint(warps_per_block: usize) -> KernelFootprint {
    KernelFootprint {
        shared_bytes_per_block: 1024,
        registers_per_thread: 24,
        warps_per_block: warps_per_block as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_kernel_gets_two_blocks() {
        // 96 KB shared / 48 KB per block = 2 co-resident blocks.
        let blocks = max_blocks_per_sm(&SmLimits::default(), &staging_kernel_footprint(8));
        assert_eq!(blocks, 2);
    }

    #[test]
    fn lean_kernel_is_warp_limited() {
        // Shared memory allows 96 blocks; warp slots allow 64 / 8 = 8.
        let blocks = max_blocks_per_sm(&SmLimits::default(), &lean_kernel_footprint(8));
        assert_eq!(blocks, 8);
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let kernel = KernelFootprint {
            shared_bytes_per_block: 0,
            registers_per_thread: 255,
            warps_per_block: 8,
        };
        // 64K regs / (255 × 256) ≈ 1 block.
        assert_eq!(max_blocks_per_sm(&SmLimits::default(), &kernel), 1);
    }

    #[test]
    fn oversized_block_yields_zero() {
        let kernel = KernelFootprint {
            shared_bytes_per_block: 200 * 1024,
            registers_per_thread: 32,
            warps_per_block: 8,
        };
        assert_eq!(max_blocks_per_sm(&SmLimits::default(), &kernel), 0);
    }

    #[test]
    fn configure_clamps_to_at_least_one() {
        let gpu = GpuConfig::titan_xp_like();
        let kernel = KernelFootprint {
            shared_bytes_per_block: 200 * 1024,
            registers_per_thread: 32,
            warps_per_block: 8,
        };
        let configured = configure_for_kernel(&gpu, &SmLimits::default(), &kernel);
        assert_eq!(configured.blocks_per_sm, 1);
    }

    #[test]
    fn matches_the_residency_the_algorithms_use() {
        // The experiment configuration: staging kernels at 2 blocks/SM,
        // lean kernels at ≥ 6 — consistent with what the calculator gives
        // for plausible footprints.
        let staging = max_blocks_per_sm(&SmLimits::default(), &staging_kernel_footprint(8));
        let lean = max_blocks_per_sm(&SmLimits::default(), &lean_kernel_footprint(8));
        assert!(staging <= 2);
        assert!(lean >= 6);
    }
}
