//! Lock-step warp binary search: the shared functional-plus-trace kernel
//! primitive.
//!
//! Every binary-search-based triangle-counting kernel in `tc-algos` (and
//! the profiler's micro-benchmarks) funnels through
//! [`lockstep_binary_search`]: it *performs* up to 32 searches the way a
//! warp would — all lanes advancing one probe per iteration until every
//! lane terminates — while emitting the exact warp ops that execution
//! generates. Timing and results therefore can never drift apart.

use crate::coalesce::bank_transactions;
use crate::ops::WarpOp;
use crate::VertexId32;

/// Where the searched list lives, which decides the memory-op flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchSpace {
    /// List staged in shared memory (Hu's kernel after the copy phase).
    Shared,
    /// List in global memory at the given word offset (TriCore, Gunrock).
    Global {
        /// Word address of the list's first element in the flat adjacency
        /// array; probes at index `i` touch `base + i`.
        base: u64,
    },
}

/// Per-step cost constants of the search loop (address arithmetic, the
/// comparison, and branch handling). Calibrated once in `tc-core` and
/// shared by all kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchCosts {
    /// Compute cycles per probe iteration (all lanes, lock-step).
    pub compute_per_step: u32,
    /// Fixed compute cycles per 32-search batch (index computation,
    /// loads of the keys, loop setup).
    pub compute_overhead: u32,
}

impl Default for SearchCosts {
    fn default() -> Self {
        Self {
            compute_per_step: 2,
            compute_overhead: 4,
        }
    }
}

/// Statistics returned by one lock-step batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchOutcome {
    /// How many keys were found in the list.
    pub found: u32,
    /// Distinct data words the warp pulled from memory (×4 = bytes).
    pub words_touched: u64,
}

/// Runs up to 32 binary searches (`keys`) against a sorted `list` in lock
/// step and appends the generated warp ops to `ops`.
///
/// All active lanes probe simultaneously; one iteration produces one memory
/// access (coalescing/bank behaviour computed from the actual probe
/// addresses) plus one compute op. A lane deactivates when it finds its key
/// or exhausts its range; the loop runs until all lanes are inactive —
/// exactly the SIMT execution of the kernels in the paper.
///
/// # Panics
/// Panics if more than 32 keys are supplied (a warp has 32 lanes).
pub fn lockstep_binary_search(
    list: &[VertexId32],
    keys: &[VertexId32],
    space: SearchSpace,
    costs: &SearchCosts,
    ops: &mut Vec<WarpOp>,
) -> SearchOutcome {
    assert!(keys.len() <= 32, "a warp has at most 32 lanes");
    let mut outcome = SearchOutcome::default();
    if keys.is_empty() {
        return outcome;
    }
    if costs.compute_overhead > 0 {
        ops.push(WarpOp::Compute(costs.compute_overhead));
    }
    if list.is_empty() {
        return outcome;
    }

    let mut lo = [0usize; 32];
    let mut hi = [0usize; 32];
    let mut active = [false; 32];
    for i in 0..keys.len() {
        hi[i] = list.len();
        active[i] = true;
    }

    let mut probes: Vec<u64> = Vec::with_capacity(keys.len());
    // Global-memory lines already resident in L1 for this batch.
    let mut cached: Vec<u64> = Vec::new();
    loop {
        probes.clear();
        for i in 0..keys.len() {
            if active[i] {
                probes.push(((lo[i] + hi[i]) / 2) as u64);
            }
        }
        if probes.is_empty() {
            break;
        }
        match space {
            SearchSpace::Shared => {
                let access = bank_transactions(probes.iter().copied());
                ops.push(WarpOp::SharedAccess {
                    transactions: access.transactions,
                });
                outcome.words_touched += access.distinct_words as u64;
            }
            SearchSpace::Global { base } => {
                // L1 caching: only lines not yet touched by this batch pay
                // a global transaction; re-probes of resident lines are an
                // on-chip access (short latency, no DRAM traffic). Short
                // lists therefore load once and finish from cache — the
                // compute-intensive regime of the paper's Figure 4.
                let mut new_segments = 0u32;
                for &p in &probes {
                    let seg = (base + p) / crate::coalesce::WORDS_PER_SEGMENT;
                    if !cached.contains(&seg) {
                        cached.push(seg);
                        new_segments += 1;
                    }
                }
                if new_segments > 0 {
                    ops.push(WarpOp::GlobalAccess {
                        segments: new_segments,
                    });
                } else {
                    ops.push(WarpOp::SharedAccess { transactions: 1 });
                }
                // Distinct-word accounting for global reads: lanes probing
                // the same word still read it once.
                let mut distinct = 0u64;
                let mut seen = [u64::MAX; 32];
                for &p in &probes {
                    if !seen[..distinct as usize].contains(&p) {
                        seen[distinct as usize] = p;
                        distinct += 1;
                    }
                }
                outcome.words_touched += distinct;
            }
        }
        ops.push(WarpOp::Compute(costs.compute_per_step));

        for i in 0..keys.len() {
            if !active[i] {
                continue;
            }
            let mid = (lo[i] + hi[i]) / 2;
            let v = list[mid];
            if v == keys[i] {
                outcome.found += 1;
                active[i] = false;
            } else if v < keys[i] {
                lo[i] = mid + 1;
            } else {
                hi[i] = mid;
            }
            if active[i] && lo[i] >= hi[i] {
                active[i] = false;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search(list: &[u32], keys: &[u32]) -> (SearchOutcome, Vec<WarpOp>) {
        let mut ops = Vec::new();
        let out = lockstep_binary_search(
            list,
            keys,
            SearchSpace::Shared,
            &SearchCosts::default(),
            &mut ops,
        );
        (out, ops)
    }

    #[test]
    fn finds_present_keys() {
        let list: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let (out, _) = search(&list, &[0, 50, 198, 3, 99]);
        assert_eq!(out.found, 3); // 0, 50, 198 present; 3 and 99 odd → absent
    }

    #[test]
    fn empty_key_set_emits_nothing() {
        let (out, ops) = search(&[1, 2, 3], &[]);
        assert_eq!(out.found, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn empty_list_finds_nothing() {
        let (out, ops) = search(&[], &[5]);
        assert_eq!(out.found, 0);
        assert_eq!(ops.len(), 1); // just the overhead compute
    }

    #[test]
    fn step_count_is_logarithmic() {
        let list: Vec<u32> = (0..1024).map(|i| i * 2 + 1).collect(); // all misses
        let (_, ops) = search(&list, &[4]);
        let mem_steps = ops.iter().filter(|o| o.is_memory()).count();
        assert!(
            (10..=11).contains(&mem_steps),
            "expected ~log2(1024) probes, got {mem_steps}"
        );
    }

    #[test]
    fn results_match_std_binary_search() {
        let list: Vec<u32> = vec![2, 3, 5, 7, 11, 13, 17, 19, 23];
        for key in 0..25u32 {
            let (out, _) = search(&list, &[key]);
            assert_eq!(
                out.found == 1,
                list.binary_search(&key).is_ok(),
                "key {key}"
            );
        }
    }

    #[test]
    fn thirty_two_lanes_search_together() {
        let list: Vec<u32> = (0..4096).collect();
        let keys: Vec<u32> = (0..32).map(|i| i * 128).collect();
        let (out, ops) = search(&list, &keys);
        assert_eq!(out.found, 32);
        // Lock-step: far fewer op pairs than 32 independent searches.
        let mem_steps = ops.iter().filter(|o| o.is_memory()).count();
        assert!(mem_steps <= 13, "lock-step probes shared: {mem_steps}");
    }

    #[test]
    #[should_panic(expected = "at most 32 lanes")]
    fn more_than_32_keys_panics() {
        let keys = vec![0u32; 33];
        let mut ops = Vec::new();
        let _ = lockstep_binary_search(
            &[1],
            &keys,
            SearchSpace::Shared,
            &SearchCosts::default(),
            &mut ops,
        );
    }

    #[test]
    fn global_space_emits_global_ops() {
        let list: Vec<u32> = (0..64).collect();
        let mut ops = Vec::new();
        let _ = lockstep_binary_search(
            &list,
            &[3, 60],
            SearchSpace::Global { base: 1000 },
            &SearchCosts::default(),
            &mut ops,
        );
        assert!(ops.iter().any(|o| matches!(o, WarpOp::GlobalAccess { .. })));
    }

    #[test]
    fn short_list_loads_once_then_hits_cache() {
        // A 16-element list fits one 128-byte line: the first probe is a
        // global transaction, every later probe an on-chip (L1) access.
        let list: Vec<u32> = (0..16).map(|i| i * 2 + 1).collect(); // misses
        let mut ops = Vec::new();
        let _ = lockstep_binary_search(
            &list,
            &[2, 8],
            SearchSpace::Global { base: 0 },
            &SearchCosts::default(),
            &mut ops,
        );
        let globals = ops
            .iter()
            .filter(|o| matches!(o, WarpOp::GlobalAccess { .. }))
            .count();
        let cached = ops
            .iter()
            .filter(|o| matches!(o, WarpOp::SharedAccess { .. }))
            .count();
        assert_eq!(globals, 1, "one line load");
        assert!(cached >= 2, "later probes hit cache, got {cached}");
    }

    #[test]
    fn long_list_probes_scatter_short_list_probes_coalesce() {
        // Global-memory probes over a long list touch many segments at the
        // top of the search tree; a short list stays within one segment.
        let long: Vec<u32> = (0..8192).collect();
        let short: Vec<u32> = (0..16).collect();
        let keys_long: Vec<u32> = (0..32).map(|i| i * 256 + 1).collect();
        let keys_short: Vec<u32> = (0..16).collect();

        let mut ops_long = Vec::new();
        let mut ops_short = Vec::new();
        let costs = SearchCosts::default();
        lockstep_binary_search(
            &long,
            &keys_long,
            SearchSpace::Global { base: 0 },
            &costs,
            &mut ops_long,
        );
        lockstep_binary_search(
            &short,
            &keys_short,
            SearchSpace::Global { base: 0 },
            &costs,
            &mut ops_short,
        );
        let seg = |ops: &[WarpOp]| -> u32 {
            ops.iter()
                .map(|o| match o {
                    WarpOp::GlobalAccess { segments } => *segments,
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        };
        assert!(seg(&ops_long) > 4, "long-list probes must scatter");
        assert_eq!(seg(&ops_short), 1, "short-list probes must coalesce");
    }
}
