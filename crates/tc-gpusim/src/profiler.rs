//! The `nvprof` substitute: micro-benchmarks that measure how binary-search
//! workloads behave as a function of adjacency-list length.
//!
//! The paper (Section 5.3, Figure 8) runs `nvprof` over Hu's kernel to
//! obtain (a) achieved shared-memory bandwidth `BW(d̃)` and (b) the
//! computing-pressure headroom `p_c(d̃)` — the factor by which compute work
//! can be multiplied before a memory-dominated kernel slows by more than
//! 5%. We reproduce the same protocol against the simulator: a micro-kernel
//! performing batches of 32 lock-step binary searches over a staged list of
//! a given length, swept over lengths.

use crate::config::GpuConfig;
use crate::engine::simulate;
use crate::ops::WarpOp;
use crate::search::{lockstep_binary_search, SearchCosts, SearchSpace};
use crate::trace::{BlockSource, BlockTrace};
use crate::VertexId32;
use std::borrow::Cow;

/// One measured point of the length sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfilePoint {
    /// Adjacency-list length this point was measured at.
    pub list_len: usize,
    /// Achieved shared-memory bandwidth in bytes/cycle (Figure 8, left axis).
    pub shared_bandwidth: f64,
    /// Computing-pressure headroom before the 5% slowdown (Figure 8,
    /// right axis). 0 for compute-dominated lengths.
    pub p_c: u32,
    /// Baseline kernel cycles at this length (no extra pressure).
    pub baseline_cycles: u64,
}

/// Slowdown tolerance of the balance-point experiment (the paper uses 5%).
pub const SLOWDOWN_TOLERANCE: f64 = 1.05;

/// Micro-kernel: every warp repeatedly (a) stages the list from global
/// memory, (b) syncs, (c) runs one batch of 32 binary searches, optionally
/// followed by `extra_compute` artificial compute cycles.
struct SweepKernel {
    blocks: usize,
    warps_per_block: usize,
    list: Vec<VertexId32>,
    keys: Vec<VertexId32>,
    rounds: usize,
    extra_compute: u32,
    costs: SearchCosts,
}

impl SweepKernel {
    /// Distinct shared-memory words one warp touches per run, times 4 —
    /// used for the bandwidth numerator.
    fn shared_bytes_per_warp(&self) -> u64 {
        let mut ops = Vec::new();
        let out = lockstep_binary_search(
            &self.list,
            &self.keys,
            SearchSpace::Shared,
            &self.costs,
            &mut ops,
        );
        out.words_touched * 4 * self.rounds as u64
    }
}

impl BlockSource for SweepKernel {
    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn block(&self, _idx: usize) -> Cow<'_, BlockTrace> {
        let mut b = BlockTrace::builder();
        for _ in 0..self.warps_per_block {
            for _ in 0..self.rounds {
                // Stage the list cooperatively from global memory: the block
                // streams `list_len` words, `ceil(len/32)` coalesced
                // segments shared across warps; charge each warp its share.
                let share = (self.list.len() as u64).div_ceil(32 * self.warps_per_block as u64);
                b.ops_mut().push(WarpOp::GlobalAccess {
                    segments: share.max(1) as u32,
                });
                b.ops_mut().push(WarpOp::BlockSync);
                let _ = lockstep_binary_search(
                    &self.list,
                    &self.keys,
                    SearchSpace::Shared,
                    &self.costs,
                    b.ops_mut(),
                );
                if self.extra_compute > 0 {
                    b.ops_mut().push(WarpOp::Compute(self.extra_compute));
                }
            }
            b.end_warp();
        }
        Cow::Owned(b.finish())
    }
}

fn sweep_kernel(config: &GpuConfig, list_len: usize, extra_compute: u32) -> SweepKernel {
    // Even-valued list, odd search keys spread uniformly: every search
    // misses, so all lanes run the full log2(len) depth — the worst case the
    // models reason about.
    let list: Vec<VertexId32> = (0..list_len as u32).map(|i| i * 2).collect();
    let keys: Vec<VertexId32> = (0..32u32)
        .map(|i| ((i as u64 * 2 + 1) * list_len.max(1) as u64 * 2 / 64) as u32 | 1)
        .collect();
    SweepKernel {
        blocks: config.num_sms * config.blocks_per_sm,
        warps_per_block: config.warps_per_block,
        list,
        keys,
        rounds: 8,
        extra_compute,
        costs: SearchCosts::default(),
    }
}

/// Runs the full sweep: for each length, measure achieved shared-memory
/// bandwidth and the `p_c` balance point.
pub fn profile_lengths(config: &GpuConfig, lengths: &[usize]) -> Vec<ProfilePoint> {
    lengths
        .iter()
        .map(|&len| profile_one(config, len))
        .collect()
}

/// Measures a single list length.
pub fn profile_one(config: &GpuConfig, list_len: usize) -> ProfilePoint {
    let kernel = sweep_kernel(config, list_len, 0);
    let metrics = simulate(config, &kernel);
    let baseline = metrics.kernel_cycles.max(1);
    let total_bytes =
        kernel.shared_bytes_per_warp() * (kernel.blocks * kernel.warps_per_block) as u64;
    let bandwidth = total_bytes as f64 / baseline as f64;

    ProfilePoint {
        list_len,
        shared_bandwidth: bandwidth,
        p_c: balance_point(config, list_len, baseline),
        baseline_cycles: baseline,
    }
}

/// The paper's balance-point experiment: the largest extra-compute factor
/// whose kernel time stays within [`SLOWDOWN_TOLERANCE`] of baseline.
///
/// Kernel time is non-decreasing in the injected compute, so exponential
/// probing followed by binary search is exact.
fn balance_point(config: &GpuConfig, list_len: usize, baseline: u64) -> u32 {
    let fits = |p_c: u32| -> bool {
        let t = simulate(config, &sweep_kernel(config, list_len, p_c)).kernel_cycles;
        t as f64 <= baseline as f64 * SLOWDOWN_TOLERANCE
    };
    if !fits(1) {
        return 0;
    }
    // Exponential probe.
    let mut lo = 1u32;
    let mut hi = 2u32;
    while hi <= 4096 && fits(hi) {
        lo = hi;
        hi *= 2;
    }
    if hi > 4096 {
        return lo;
    }
    // Binary search in (lo, hi): fits(lo), !fits(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The standard length grid for Figure 8: powers of two covering short
/// (compute-intensive) through long (memory-intensive) lists.
pub fn standard_lengths() -> Vec<usize> {
    (1..=13).map(|s| 1usize << s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        let mut c = GpuConfig::titan_xp_like();
        // Small GPU keeps micro-benchmarks fast in tests.
        c.num_sms = 4;
        c
    }

    #[test]
    fn profile_is_deterministic() {
        let a = profile_one(&cfg(), 256);
        let b = profile_one(&cfg(), 256);
        assert_eq!(a, b);
    }

    #[test]
    fn bandwidth_grows_with_list_length() {
        let c = cfg();
        let short = profile_one(&c, 8);
        let long = profile_one(&c, 4096);
        assert!(
            long.shared_bandwidth > short.shared_bandwidth,
            "BW must rise with length: short {} vs long {}",
            short.shared_bandwidth,
            long.shared_bandwidth
        );
    }

    #[test]
    fn p_c_grows_with_list_length() {
        // Long lists are memory-dominated: plenty of compute headroom.
        let c = cfg();
        let short = profile_one(&c, 4);
        let long = profile_one(&c, 8192);
        assert!(
            long.p_c >= short.p_c,
            "p_c must not shrink with length: short {} vs long {}",
            short.p_c,
            long.p_c
        );
    }

    #[test]
    fn standard_grid_is_ascending_powers_of_two() {
        let g = standard_lengths();
        assert_eq!(g.first(), Some(&2));
        assert_eq!(g.last(), Some(&8192));
        for w in g.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }
}
