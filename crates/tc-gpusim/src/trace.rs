//! Kernel traces: how algorithms describe their work to the engine.

use crate::ops::WarpOp;

/// The op stream of one warp.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarpTrace {
    /// Operations in program order.
    pub ops: Vec<WarpOp>,
}

impl WarpTrace {
    /// An empty warp (idle for the whole block).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from an op list.
    pub fn new(ops: Vec<WarpOp>) -> Self {
        Self { ops }
    }

    /// Total compute cycles in this trace.
    pub fn compute_cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                WarpOp::Compute(c) => *c as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total memory transactions (global + shared) in this trace.
    pub fn memory_transactions(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                WarpOp::GlobalAccess { segments } => *segments as u64,
                WarpOp::SharedAccess { transactions } => *transactions as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of `BlockSync` barriers this warp participates in.
    pub fn sync_count(&self) -> usize {
        self.ops.iter().filter(|op| **op == WarpOp::BlockSync).count()
    }
}

/// The op streams of one block's warps.
///
/// Every **non-empty** warp of a block must contain the same number of
/// `BlockSync` ops — a real kernel deadlocks otherwise, and
/// [`crate::simulate`] panics to surface the bug. Completely empty warps
/// are permitted as padding (they model lanes the kernel masks out before
/// the first barrier).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockTrace {
    /// One trace per warp in the block.
    pub warps: Vec<WarpTrace>,
}

impl BlockTrace {
    /// Builds from warp traces.
    pub fn new(warps: Vec<WarpTrace>) -> Self {
        Self { warps }
    }

    /// Whether all non-empty warps agree on barrier count (kernel is
    /// deadlock-free). Empty padding warps are ignored.
    pub fn barriers_consistent(&self) -> bool {
        let mut counts = self
            .warps
            .iter()
            .filter(|w| !w.ops.is_empty())
            .map(WarpTrace::sync_count);
        match counts.next() {
            None => true,
            Some(first) => counts.all(|c| c == first),
        }
    }
}

/// A lazily generated sequence of block traces.
///
/// The engine pulls blocks on demand as SM slots free up, so a kernel with
/// hundreds of thousands of blocks never materializes more than
/// `num_sms × blocks_per_sm` traces at once. Implementations regenerate
/// each block's ops from the graph — deterministic, so repeated calls with
/// the same index must return the same trace.
pub trait BlockSource {
    /// Total number of blocks in the kernel grid.
    fn num_blocks(&self) -> usize;

    /// The trace of block `idx` (`0 <= idx < num_blocks()`).
    fn block(&self, idx: usize) -> BlockTrace;
}

/// A [`BlockSource`] over pre-materialized traces; convenient for tests and
/// micro-benchmarks.
#[derive(Clone, Debug)]
pub struct SliceBlockSource {
    blocks: Vec<BlockTrace>,
}

impl SliceBlockSource {
    /// Wraps explicit block traces.
    pub fn new(blocks: Vec<BlockTrace>) -> Self {
        Self { blocks }
    }
}

impl BlockSource for SliceBlockSource {
    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block(&self, idx: usize) -> BlockTrace {
        self.blocks[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_trace_aggregates() {
        let w = WarpTrace::new(vec![
            WarpOp::Compute(3),
            WarpOp::GlobalAccess { segments: 4 },
            WarpOp::BlockSync,
            WarpOp::SharedAccess { transactions: 2 },
            WarpOp::Compute(5),
        ]);
        assert_eq!(w.compute_cycles(), 8);
        assert_eq!(w.memory_transactions(), 6);
        assert_eq!(w.sync_count(), 1);
    }

    #[test]
    fn barrier_consistency() {
        let sync = WarpTrace::new(vec![WarpOp::BlockSync]);
        let nosync = WarpTrace::new(vec![WarpOp::Compute(1)]);
        assert!(BlockTrace::new(vec![sync.clone(), sync.clone()]).barriers_consistent());
        assert!(!BlockTrace::new(vec![sync, nosync]).barriers_consistent());
        assert!(BlockTrace::default().barriers_consistent());
    }

    #[test]
    fn slice_source_round_trips() {
        let b = BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(1)])]);
        let src = SliceBlockSource::new(vec![b.clone(), b.clone()]);
        assert_eq!(src.num_blocks(), 2);
        assert_eq!(src.block(1), b);
    }
}
