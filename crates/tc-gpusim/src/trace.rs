//! Kernel traces: how algorithms describe their work to the engine.
//!
//! # Storage layout
//!
//! A [`BlockTrace`] stores all of its warps' ops in **one flat arena**
//! (`Vec<WarpOp>`) plus a per-warp table of end offsets. Trace generation
//! dominated by per-warp `Vec` allocations was the hottest host-side cost
//! of the simulator; the arena turns a block's construction into at most
//! two allocations regardless of warp count. Generators append ops through
//! [`BlockTraceBuilder`] and seal warp boundaries with
//! [`BlockTraceBuilder::end_warp`]; [`WarpTrace`] remains as a convenience
//! wrapper for tests and hand-built traces.

use crate::ops::WarpOp;
use std::borrow::Cow;

/// Total compute cycles in a warp's op slice.
pub fn compute_cycles(ops: &[WarpOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            WarpOp::Compute(c) => *c as u64,
            _ => 0,
        })
        .sum()
}

/// Total memory transactions (global + shared) in a warp's op slice.
pub fn memory_transactions(ops: &[WarpOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            WarpOp::GlobalAccess { segments } => *segments as u64,
            WarpOp::SharedAccess { transactions } => *transactions as u64,
            _ => 0,
        })
        .sum()
}

/// Number of `BlockSync` barriers in a warp's op slice.
pub fn sync_count(ops: &[WarpOp]) -> usize {
    ops.iter().filter(|op| **op == WarpOp::BlockSync).count()
}

/// The op stream of one warp (convenience wrapper; block storage itself is
/// the flat arena in [`BlockTrace`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarpTrace {
    /// Operations in program order.
    pub ops: Vec<WarpOp>,
}

impl WarpTrace {
    /// An empty warp (idle for the whole block).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from an op list.
    pub fn new(ops: Vec<WarpOp>) -> Self {
        Self { ops }
    }

    /// Total compute cycles in this trace.
    pub fn compute_cycles(&self) -> u64 {
        compute_cycles(&self.ops)
    }

    /// Total memory transactions (global + shared) in this trace.
    pub fn memory_transactions(&self) -> u64 {
        memory_transactions(&self.ops)
    }

    /// Number of `BlockSync` barriers this warp participates in.
    pub fn sync_count(&self) -> usize {
        sync_count(&self.ops)
    }
}

/// The op streams of one block's warps, stored as a flat arena.
///
/// Every **non-empty** warp of a block must contain the same number of
/// `BlockSync` ops — a real kernel deadlocks otherwise, and
/// [`crate::simulate`] panics to surface the bug. Completely empty warps
/// are permitted as padding (they model lanes the kernel masks out before
/// the first barrier).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockTrace {
    /// All warps' ops, concatenated in warp order.
    ops: Vec<WarpOp>,
    /// `ends[i]` is the exclusive end of warp `i`'s range in `ops`
    /// (warp `i` starts where warp `i - 1` ends).
    ends: Vec<u32>,
}

impl BlockTrace {
    /// Builds from warp traces (flattening them into the arena).
    pub fn new(warps: Vec<WarpTrace>) -> Self {
        let mut b =
            BlockTraceBuilder::with_capacity(warps.len(), warps.iter().map(|w| w.ops.len()).sum());
        for w in &warps {
            b.ops_mut().extend_from_slice(&w.ops);
            b.end_warp();
        }
        b.finish()
    }

    /// A builder appending ops directly into the arena.
    pub fn builder() -> BlockTraceBuilder {
        BlockTraceBuilder::default()
    }

    /// Number of warps in the block.
    pub fn num_warps(&self) -> usize {
        self.ends.len()
    }

    /// Op slice of warp `i`.
    pub fn warp(&self, i: usize) -> &[WarpOp] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.ops[start..self.ends[i] as usize]
    }

    /// Iterates over all warps' op slices.
    pub fn warps(&self) -> impl Iterator<Item = &[WarpOp]> + '_ {
        (0..self.num_warps()).map(|i| self.warp(i))
    }

    /// The whole arena (all warps' ops, concatenated).
    pub fn all_ops(&self) -> &[WarpOp] {
        &self.ops
    }

    /// Whether every warp is empty (the block is pure padding).
    pub fn all_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether all non-empty warps agree on barrier count (kernel is
    /// deadlock-free). Empty padding warps are ignored.
    pub fn barriers_consistent(&self) -> bool {
        let mut counts = self.warps().filter(|w| !w.is_empty()).map(sync_count);
        match counts.next() {
            None => true,
            Some(first) => counts.all(|c| c == first),
        }
    }
}

/// Incremental arena builder for [`BlockTrace`].
///
/// Push the current warp's ops into [`ops_mut`](Self::ops_mut), then seal
/// the warp with [`end_warp`](Self::end_warp) (an immediate `end_warp`
/// records an empty padding warp). The arena is never re-shuffled: building
/// a block costs at most one allocation per backing vector, not one per
/// warp.
#[derive(Clone, Debug, Default)]
pub struct BlockTraceBuilder {
    ops: Vec<WarpOp>,
    ends: Vec<u32>,
}

impl BlockTraceBuilder {
    /// Pre-sizes the arena for `warps` warps and `ops` total ops.
    pub fn with_capacity(warps: usize, ops: usize) -> Self {
        Self {
            ops: Vec::with_capacity(ops),
            ends: Vec::with_capacity(warps),
        }
    }

    /// The arena tail: ops pushed here belong to the warp currently being
    /// built.
    pub fn ops_mut(&mut self) -> &mut Vec<WarpOp> {
        &mut self.ops
    }

    /// Seals the current warp at the arena's present length.
    pub fn end_warp(&mut self) {
        debug_assert!(
            self.ops.len() <= u32::MAX as usize,
            "block op arena overflow"
        );
        self.ends.push(self.ops.len() as u32);
    }

    /// Number of warps sealed so far.
    pub fn num_warps(&self) -> usize {
        self.ends.len()
    }

    /// Finishes the block.
    ///
    /// # Panics
    /// Panics if ops were pushed after the last `end_warp` (they would
    /// belong to no warp).
    pub fn finish(self) -> BlockTrace {
        assert_eq!(
            self.ends.last().copied().unwrap_or(0) as usize,
            self.ops.len(),
            "ops pushed after the last end_warp()"
        );
        BlockTrace {
            ops: self.ops,
            ends: self.ends,
        }
    }
}

/// A lazily generated sequence of block traces.
///
/// The engine pulls blocks on demand as SM slots free up, so a kernel with
/// hundreds of thousands of blocks never materializes more than
/// `num_sms × blocks_per_sm` traces at once. Implementations regenerate
/// each block's ops from the graph — deterministic, so repeated calls with
/// the same index must return the same trace.
///
/// Returning [`Cow`] lets resident sources ([`SliceBlockSource`], caches)
/// lend their blocks without a deep copy, while generators hand over
/// freshly built traces by value.
pub trait BlockSource {
    /// Total number of blocks in the kernel grid.
    fn num_blocks(&self) -> usize;

    /// The trace of block `idx` (`0 <= idx < num_blocks()`).
    fn block(&self, idx: usize) -> Cow<'_, BlockTrace>;
}

/// A [`BlockSource`] over pre-materialized traces; convenient for tests and
/// micro-benchmarks. Blocks are lent to the engine, never cloned.
#[derive(Clone, Debug)]
pub struct SliceBlockSource {
    blocks: Vec<BlockTrace>,
}

impl SliceBlockSource {
    /// Wraps explicit block traces.
    pub fn new(blocks: Vec<BlockTrace>) -> Self {
        Self { blocks }
    }
}

impl BlockSource for SliceBlockSource {
    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block(&self, idx: usize) -> Cow<'_, BlockTrace> {
        Cow::Borrowed(&self.blocks[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_trace_aggregates() {
        let w = WarpTrace::new(vec![
            WarpOp::Compute(3),
            WarpOp::GlobalAccess { segments: 4 },
            WarpOp::BlockSync,
            WarpOp::SharedAccess { transactions: 2 },
            WarpOp::Compute(5),
        ]);
        assert_eq!(w.compute_cycles(), 8);
        assert_eq!(w.memory_transactions(), 6);
        assert_eq!(w.sync_count(), 1);
    }

    #[test]
    fn barrier_consistency() {
        let sync = WarpTrace::new(vec![WarpOp::BlockSync]);
        let nosync = WarpTrace::new(vec![WarpOp::Compute(1)]);
        assert!(BlockTrace::new(vec![sync.clone(), sync.clone()]).barriers_consistent());
        assert!(!BlockTrace::new(vec![sync, nosync]).barriers_consistent());
        assert!(BlockTrace::default().barriers_consistent());
    }

    #[test]
    fn slice_source_round_trips() {
        let b = BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(1)])]);
        let src = SliceBlockSource::new(vec![b.clone(), b.clone()]);
        assert_eq!(src.num_blocks(), 2);
        assert_eq!(*src.block(1), b);
    }

    /// Regression (perf): resident sources lend blocks; `block()` must not
    /// deep-copy the trace.
    #[test]
    fn slice_source_borrows_blocks() {
        let b = BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(1)])]);
        let src = SliceBlockSource::new(vec![b]);
        assert!(
            matches!(src.block(0), Cow::Borrowed(_)),
            "SliceBlockSource must lend resident blocks, not clone them"
        );
    }

    #[test]
    fn builder_matches_flattened_warps() {
        let warps = vec![
            WarpTrace::new(vec![WarpOp::Compute(1), WarpOp::BlockSync]),
            WarpTrace::empty(),
            WarpTrace::new(vec![
                WarpOp::GlobalAccess { segments: 2 },
                WarpOp::BlockSync,
            ]),
        ];
        let mut b = BlockTrace::builder();
        for w in &warps {
            b.ops_mut().extend_from_slice(&w.ops);
            b.end_warp();
        }
        let from_builder = b.finish();
        assert_eq!(from_builder, BlockTrace::new(warps));
        assert_eq!(from_builder.num_warps(), 3);
        assert_eq!(from_builder.warp(1), &[]);
        assert_eq!(from_builder.warp(2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "after the last end_warp")]
    fn builder_rejects_unsealed_ops() {
        let mut b = BlockTrace::builder();
        b.ops_mut().push(WarpOp::Compute(1));
        let _ = b.finish();
    }

    #[test]
    fn arena_accessors_agree_with_warp_views() {
        let warps = vec![
            WarpTrace::new(vec![WarpOp::Compute(5)]),
            WarpTrace::new(vec![WarpOp::SharedAccess { transactions: 3 }]),
        ];
        let t = BlockTrace::new(warps);
        assert_eq!(t.all_ops().len(), 2);
        assert!(!t.all_empty());
        let collected: Vec<&[WarpOp]> = t.warps().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(compute_cycles(collected[0]), 5);
        assert_eq!(memory_transactions(collected[1]), 3);
    }
}
