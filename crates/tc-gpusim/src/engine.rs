//! The discrete-event execution engine.
//!
//! Time is kept in fixed-point "ticks" (256 ticks = 1 cycle) so event
//! ordering is exact and the simulation is bit-for-bit deterministic.
//!
//! Each SM owns three servers — compute, global memory, shared memory —
//! each a single resource with a `free_at` horizon. A warp executing an op
//! starts at `max(warp_ready, server_free)`, occupies the server for the
//! op's service time, and (for memory) becomes ready again only after an
//! additional latency that the server does *not* stay busy for. That gap is
//! what lets co-resident warps hide each other's latency, which is the
//! whole point of the paper's resource-balance model.
//!
//! Blocks are dispatched from a FIFO grid queue to the first SM slot that
//! frees up, like the hardware's global work distributor.

use crate::config::GpuConfig;
use crate::metrics::KernelMetrics;
use crate::ops::WarpOp;
use crate::trace::{sync_count, BlockSource, BlockTrace};
use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fixed-point ticks per cycle.
const TICKS_PER_CYCLE: u64 = 256;

fn cycles_to_ticks(c: u64) -> u64 {
    c * TICKS_PER_CYCLE
}

fn ticks_to_cycles_ceil(t: u64) -> u64 {
    t.div_ceil(TICKS_PER_CYCLE)
}

/// Service ticks for `count` units at `rate` units/cycle.
fn service_ticks(count: u64, rate: f64) -> u64 {
    debug_assert!(rate > 0.0);
    ((count as f64) * (TICKS_PER_CYCLE as f64) / rate).ceil() as u64
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WarpState {
    Runnable,
    AtBarrier,
    Done,
}

struct Warp {
    block_slot: usize,
    /// Index of this warp within its block's trace.
    lane: usize,
    pc: usize,
    state: WarpState,
    /// Tick at which this warp parked at the current barrier.
    barrier_arrival: u64,
}

struct Slot<'a> {
    sm: usize,
    /// Grid index of the resident block.
    block_idx: usize,
    /// Tick the resident block was loaded.
    block_start: u64,
    /// Trace of the currently resident block (`None` = slot idle). Held as
    /// a [`Cow`] so resident sources lend their traces and generators hand
    /// over owned ones — neither is deep-copied on load.
    trace: Option<Cow<'a, BlockTrace>>,
    /// Global warp-ids of the resident block's warps.
    warp_ids: Vec<usize>,
    warps_done: usize,
    barrier_arrived: usize,
    barrier_release: u64,
    /// Number of warps that participate in each barrier of this block.
    barrier_participants: usize,
}

#[derive(Default)]
struct Sm {
    compute_free: u64,
    global_free: u64,
    shared_free: u64,
    compute_busy: u64,
    global_busy: u64,
    shared_busy: u64,
}

/// Lifetime of one block on its SM, for timeline analysis (tail blocks,
/// per-SM load) and the chrome-trace export in [`crate::timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEvent {
    /// Grid index of the block.
    pub block: usize,
    /// SM the block ran on.
    pub sm: usize,
    /// Cycle the block became resident.
    pub start_cycles: u64,
    /// Cycle its last warp retired.
    pub end_cycles: u64,
}

/// Mutable simulation state shared by the helper functions.
struct Sim<'a, S: BlockSource + ?Sized> {
    source: &'a S,
    sms: Vec<Sm>,
    slots: Vec<Slot<'a>>,
    warps: Vec<Warp>,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    next_block: usize,
    kernel_end: u64,
    metrics: KernelMetrics,
    /// Block lifetime log (only when event collection is requested).
    block_events: Option<Vec<BlockEvent>>,
    /// Reusable buffer of warp ids released by a barrier. Kept on the sim
    /// so barrier release is allocation-free in steady state.
    barrier_scratch: Vec<usize>,
}

impl<'a, S: BlockSource + ?Sized> Sim<'a, S> {
    fn push_event(&mut self, ready: u64, wid: usize) {
        self.events.push(Reverse((ready, self.seq, wid)));
        self.seq += 1;
    }

    /// Records the resident block's lifetime (if collection is on) before
    /// the slot is reused or retired.
    fn log_block_event(&mut self, slot_idx: usize, end: u64) {
        if self.slots[slot_idx].trace.is_none() {
            return;
        }
        let slot = &self.slots[slot_idx];
        let event = BlockEvent {
            block: slot.block_idx,
            sm: slot.sm,
            start_cycles: ticks_to_cycles_ceil(slot.block_start),
            end_cycles: ticks_to_cycles_ceil(end),
        };
        if let Some(log) = &mut self.block_events {
            log.push(event);
        }
    }

    /// Loads grid blocks into `slot_idx` starting at `now`, skipping (and
    /// instantly completing) empty blocks.
    fn load_block(&mut self, slot_idx: usize, now: u64) {
        self.log_block_event(slot_idx, now);
        while self.next_block < self.source.num_blocks() {
            let trace = self.source.block(self.next_block);
            self.next_block += 1;
            assert!(
                trace.barriers_consistent(),
                "block {} has non-empty warps with differing BlockSync counts \
                 (kernel would deadlock)",
                self.next_block - 1
            );
            if trace.all_empty() {
                self.kernel_end = self.kernel_end.max(now);
                if let Some(log) = &mut self.block_events {
                    log.push(BlockEvent {
                        block: self.next_block - 1,
                        sm: self.slots[slot_idx].sm,
                        start_cycles: ticks_to_cycles_ceil(now),
                        end_cycles: ticks_to_cycles_ceil(now),
                    });
                }
                continue;
            }
            self.metrics.warps += trace.num_warps();
            let participants = trace.warps().filter(|w| sync_count(w) > 0).count();
            let block_idx = self.next_block - 1;
            let slot = &mut self.slots[slot_idx];
            slot.block_idx = block_idx;
            slot.block_start = now;
            slot.warps_done = 0;
            slot.barrier_arrived = 0;
            slot.barrier_release = 0;
            slot.barrier_participants = participants;
            slot.warp_ids.clear();
            let mut pending = Vec::new();
            for lane in 0..trace.num_warps() {
                let id = self.warps.len();
                let empty = trace.warp(lane).is_empty();
                self.warps.push(Warp {
                    block_slot: slot_idx,
                    lane,
                    pc: 0,
                    state: if empty {
                        WarpState::Done
                    } else {
                        WarpState::Runnable
                    },
                    barrier_arrival: 0,
                });
                slot.warp_ids.push(id);
                if empty {
                    slot.warps_done += 1;
                } else {
                    pending.push(id);
                }
            }
            slot.trace = Some(trace);
            for id in pending {
                self.push_event(now, id);
            }
            return;
        }
        self.slots[slot_idx].trace = None;
    }

    /// After advancing `pc`, requeues the warp at `ready`, or retires it —
    /// possibly completing the block and pulling the next grid block.
    fn finish_or_requeue(&mut self, wid: usize, ready: u64) {
        let slot_idx = self.warps[wid].block_slot;
        let lane = self.warps[wid].lane;
        let done = {
            let trace = self.slots[slot_idx].trace.as_ref().expect("resident block");
            self.warps[wid].pc >= trace.warp(lane).len()
        };
        if !done {
            self.push_event(ready, wid);
            return;
        }
        self.warps[wid].state = WarpState::Done;
        self.slots[slot_idx].warps_done += 1;
        self.kernel_end = self.kernel_end.max(ready);
        if self.slots[slot_idx].warps_done == self.slots[slot_idx].warp_ids.len() {
            self.load_block(slot_idx, ready);
        }
    }
}

/// Runs a kernel described by `source` on the configured GPU and returns
/// its metrics.
///
/// # Panics
/// Panics if a block's non-empty warps disagree on barrier count (such a
/// kernel would deadlock on real hardware).
pub fn simulate<S: BlockSource + ?Sized>(config: &GpuConfig, source: &S) -> KernelMetrics {
    run(config, source, false).0
}

/// Like [`simulate`], additionally returning the lifetime of every block —
/// the raw material for timeline/tail analysis ([`crate::timeline`]).
pub fn simulate_with_events<S: BlockSource + ?Sized>(
    config: &GpuConfig,
    source: &S,
) -> (KernelMetrics, Vec<BlockEvent>) {
    let (metrics, events) = run(config, source, true);
    (metrics, events.expect("event collection requested"))
}

fn run<S: BlockSource + ?Sized>(
    config: &GpuConfig,
    source: &S,
    collect_events: bool,
) -> (KernelMetrics, Option<Vec<BlockEvent>>) {
    config.validate();
    let num_blocks = source.num_blocks();
    let mut sim = Sim {
        source,
        sms: (0..config.num_sms).map(|_| Sm::default()).collect(),
        slots: (0..config.num_sms * config.blocks_per_sm)
            .map(|i| Slot {
                sm: i % config.num_sms,
                block_idx: 0,
                block_start: 0,
                trace: None,
                warp_ids: Vec::new(),
                warps_done: 0,
                barrier_arrived: 0,
                barrier_release: 0,
                barrier_participants: 0,
            })
            .collect(),
        warps: Vec::new(),
        events: BinaryHeap::new(),
        seq: 0,
        next_block: 0,
        kernel_end: 0,
        metrics: KernelMetrics {
            blocks: num_blocks,
            ..Default::default()
        },
        block_events: if collect_events {
            Some(Vec::new())
        } else {
            None
        },
        barrier_scratch: Vec::new(),
    };
    if num_blocks == 0 {
        return (sim.metrics, sim.block_events);
    }

    let global_latency = cycles_to_ticks(config.global_latency);
    let shared_latency = cycles_to_ticks(config.shared_latency);

    for slot_idx in 0..sim.slots.len() {
        sim.load_block(slot_idx, 0);
    }

    while let Some(Reverse((now, _, wid))) = sim.events.pop() {
        let slot_idx = sim.warps[wid].block_slot;
        let lane = sim.warps[wid].lane;
        let sm_idx = sim.slots[slot_idx].sm;
        let op = {
            let trace = sim.slots[slot_idx].trace.as_ref().expect("resident block");
            trace.warp(lane)[sim.warps[wid].pc]
        };

        match op {
            WarpOp::Compute(c) => {
                let dur = service_ticks(c as u64, config.compute_throughput);
                let sm = &mut sim.sms[sm_idx];
                let start = now.max(sm.compute_free);
                sm.compute_free = start + dur;
                sm.compute_busy += dur;
                sim.metrics.compute_cycles += c as u64;
                sim.warps[wid].pc += 1;
                sim.finish_or_requeue(wid, start + dur);
            }
            WarpOp::GlobalAccess { segments } => {
                let dur = service_ticks(segments as u64, config.global_bw);
                let sm = &mut sim.sms[sm_idx];
                let start = now.max(sm.global_free);
                sm.global_free = start + dur;
                sm.global_busy += dur;
                sim.metrics.global_segments += segments as u64;
                sim.warps[wid].pc += 1;
                sim.finish_or_requeue(wid, start + dur + global_latency);
            }
            WarpOp::SharedAccess { transactions } => {
                let dur = service_ticks(transactions as u64, config.shared_bw);
                let sm = &mut sim.sms[sm_idx];
                let start = now.max(sm.shared_free);
                sm.shared_free = start + dur;
                sm.shared_busy += dur;
                sim.metrics.shared_transactions += transactions as u64;
                sim.warps[wid].pc += 1;
                sim.finish_or_requeue(wid, start + dur + shared_latency);
            }
            WarpOp::BlockSync => {
                sim.metrics.barrier_arrivals += 1;
                sim.warps[wid].state = WarpState::AtBarrier;
                sim.warps[wid].barrier_arrival = now;
                let slot = &mut sim.slots[slot_idx];
                slot.barrier_arrived += 1;
                slot.barrier_release = slot.barrier_release.max(now);
                if slot.barrier_arrived == slot.barrier_participants {
                    let release = slot.barrier_release;
                    slot.barrier_arrived = 0;
                    slot.barrier_release = 0;
                    // Snapshot the resident warp ids into a reusable scratch
                    // buffer: `finish_or_requeue` below may retire the block
                    // and reload this very slot with the next grid block,
                    // repopulating `warp_ids` mid-loop. The scratch lives on
                    // the sim, so steady-state release allocates nothing.
                    let mut scratch = std::mem::take(&mut sim.barrier_scratch);
                    scratch.extend_from_slice(&sim.slots[slot_idx].warp_ids);
                    for &id in &scratch {
                        if sim.warps[id].state == WarpState::AtBarrier {
                            sim.metrics.barrier_wait_cycles +=
                                ticks_to_cycles_ceil(release - sim.warps[id].barrier_arrival);
                            sim.warps[id].state = WarpState::Runnable;
                            sim.warps[id].pc += 1;
                            sim.finish_or_requeue(id, release);
                        }
                    }
                    scratch.clear();
                    sim.barrier_scratch = scratch;
                }
            }
        }
    }

    // Retire blocks still resident when the grid ran dry.
    for slot_idx in 0..sim.slots.len() {
        let end = sim.kernel_end;
        sim.log_block_event(slot_idx, end);
        sim.slots[slot_idx].trace = None;
    }

    sim.metrics.kernel_cycles = ticks_to_cycles_ceil(sim.kernel_end);
    for sm in &sim.sms {
        sim.metrics.compute_busy_cycles += ticks_to_cycles_ceil(sm.compute_busy);
        sim.metrics.global_busy_cycles += ticks_to_cycles_ceil(sm.global_busy);
        sim.metrics.shared_busy_cycles += ticks_to_cycles_ceil(sm.shared_busy);
    }
    (sim.metrics, sim.block_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SliceBlockSource, WarpTrace};

    fn cfg() -> GpuConfig {
        GpuConfig::tiny()
    }

    fn run(blocks: Vec<BlockTrace>) -> KernelMetrics {
        simulate(&cfg(), &SliceBlockSource::new(blocks))
    }

    #[test]
    fn empty_kernel_is_zero_cycles() {
        let m = run(vec![]);
        assert_eq!(m.kernel_cycles, 0);
        assert_eq!(m.blocks, 0);
    }

    #[test]
    fn single_compute_op_costs_its_cycles() {
        let m = run(vec![BlockTrace::new(vec![WarpTrace::new(vec![
            WarpOp::Compute(100),
        ])])]);
        assert_eq!(m.kernel_cycles, 100);
        assert_eq!(m.compute_cycles, 100);
    }

    #[test]
    fn sequential_compute_in_one_warp_sums() {
        let m = run(vec![BlockTrace::new(vec![WarpTrace::new(vec![
            WarpOp::Compute(30),
            WarpOp::Compute(70),
        ])])]);
        assert_eq!(m.kernel_cycles, 100);
    }

    #[test]
    fn two_warps_contend_for_compute() {
        // One compute pipeline, two warps with 50 cycles each: serialized.
        let m = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::Compute(50)]),
            WarpTrace::new(vec![WarpOp::Compute(50)]),
        ])]);
        assert_eq!(m.kernel_cycles, 100);
    }

    #[test]
    fn memory_latency_is_paid_once_when_alone() {
        // 1 segment at bw=1.0 → 1 cycle service + 100 latency.
        let m = run(vec![BlockTrace::new(vec![WarpTrace::new(vec![
            WarpOp::GlobalAccess { segments: 1 },
        ])])]);
        assert_eq!(m.kernel_cycles, 101);
        assert_eq!(m.global_segments, 1);
    }

    #[test]
    fn latency_is_hidden_by_other_warps() {
        // Two warps each issue a 1-segment load. Services serialize
        // (cycles 0-1 and 1-2) but latencies overlap: total 102, not 202.
        let m = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::GlobalAccess { segments: 1 }]),
            WarpTrace::new(vec![WarpOp::GlobalAccess { segments: 1 }]),
        ])]);
        assert_eq!(m.kernel_cycles, 102);
    }

    #[test]
    fn compute_hides_memory_latency() {
        // Warp A: long compute. Warp B: one load. Different servers, so the
        // kernel ends when the slower one ends.
        let m = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::Compute(500)]),
            WarpTrace::new(vec![WarpOp::GlobalAccess { segments: 1 }]),
        ])]);
        assert_eq!(m.kernel_cycles, 500);
    }

    #[test]
    fn barrier_waits_for_slowest_warp() {
        // Compute serializes: A 0-10, B 10-210. Barrier releases at 210.
        // Post-barrier computes serialize: 210-220, 220-230.
        let m = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![
                WarpOp::Compute(10),
                WarpOp::BlockSync,
                WarpOp::Compute(10),
            ]),
            WarpTrace::new(vec![
                WarpOp::Compute(200),
                WarpOp::BlockSync,
                WarpOp::Compute(10),
            ]),
        ])]);
        assert_eq!(m.kernel_cycles, 230);
        assert_eq!(m.barrier_arrivals, 2);
        // Warp A parked from t=10 to t=210.
        assert_eq!(m.barrier_wait_cycles, 200);
    }

    #[test]
    fn balanced_warps_wait_less_at_barriers() {
        let balanced = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::Compute(100), WarpOp::BlockSync]),
            WarpTrace::new(vec![WarpOp::Compute(100), WarpOp::BlockSync]),
        ])]);
        let skewed = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::Compute(10), WarpOp::BlockSync]),
            WarpTrace::new(vec![WarpOp::Compute(190), WarpOp::BlockSync]),
        ])]);
        assert!(balanced.barrier_wait_cycles < skewed.barrier_wait_cycles);
    }

    #[test]
    #[should_panic(expected = "differing BlockSync counts")]
    fn inconsistent_barriers_panic() {
        run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::BlockSync]),
            WarpTrace::new(vec![WarpOp::Compute(1)]),
        ])]);
    }

    #[test]
    fn idle_padding_warps_are_allowed() {
        let m = run(vec![BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::Compute(5), WarpOp::BlockSync]),
            WarpTrace::empty(),
        ])]);
        assert_eq!(m.kernel_cycles, 5);
    }

    /// Regression for the barrier-release path: when the released warps'
    /// final op is the barrier itself, `finish_or_requeue` retires the
    /// block and reloads the slot with the next grid block *while the
    /// release loop is still walking the released ids*. The snapshot of
    /// warp ids must keep pointing at the old block's warps.
    #[test]
    fn barrier_finishing_block_reloads_slot_safely() {
        let a = BlockTrace::new(vec![
            WarpTrace::new(vec![WarpOp::Compute(10), WarpOp::BlockSync]),
            WarpTrace::new(vec![WarpOp::Compute(20), WarpOp::BlockSync]),
        ]);
        let b = BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(5)])]);
        // tiny() has 1 SM × 1 slot: compute serializes 0-10 / 10-30, the
        // barrier releases at 30 finishing block a, block b runs 30-35.
        let m = run(vec![a, b]);
        assert_eq!(m.kernel_cycles, 35);
        assert_eq!(m.blocks, 2);
        assert_eq!(m.barrier_arrivals, 2);
    }

    #[test]
    fn blocks_queue_beyond_residency() {
        // tiny() has 1 SM × 1 slot; three 100-cycle blocks serialize.
        let block = BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(100)])]);
        let m = run(vec![block.clone(), block.clone(), block]);
        assert_eq!(m.kernel_cycles, 300);
        assert_eq!(m.blocks, 3);
    }

    #[test]
    fn blocks_spread_across_sms() {
        let mut config = cfg();
        config.num_sms = 2;
        let block = BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(100)])]);
        let m = simulate(
            &config,
            &SliceBlockSource::new(vec![block.clone(), block.clone()]),
        );
        assert_eq!(m.kernel_cycles, 100, "two SMs run two blocks in parallel");
    }

    #[test]
    fn empty_blocks_complete_instantly() {
        let m = run(vec![
            BlockTrace::new(vec![WarpTrace::empty()]),
            BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(10)])]),
        ]);
        assert_eq!(m.kernel_cycles, 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let blocks: Vec<BlockTrace> = (0..20)
            .map(|i| {
                BlockTrace::new(vec![
                    WarpTrace::new(vec![
                        WarpOp::Compute(1 + i),
                        WarpOp::GlobalAccess {
                            segments: 1 + i % 7,
                        },
                        WarpOp::BlockSync,
                        WarpOp::Compute(5),
                    ]),
                    WarpTrace::new(vec![
                        WarpOp::GlobalAccess { segments: 3 },
                        WarpOp::BlockSync,
                        WarpOp::SharedAccess { transactions: 2 },
                    ]),
                ])
            })
            .collect();
        let m1 = run(blocks.clone());
        let m2 = run(blocks);
        assert_eq!(m1, m2);
    }

    /// The resource-balance phenomenon itself: when blocks execute one
    /// after another (the interesting regime — more blocks than residency
    /// slots), heterogeneous blocks overlap their compute and memory
    /// servers while homogeneous blocks leave one server idle each.
    #[test]
    fn mixed_blocks_beat_segregated_blocks() {
        let mut config = cfg();
        config.blocks_per_sm = 1;
        config.global_bw = 0.5;
        let mem_warp = WarpTrace::new(vec![WarpOp::GlobalAccess { segments: 32 }; 20]);
        let cmp_warp = WarpTrace::new(vec![WarpOp::Compute(64); 20]);

        let m = || mem_warp.clone();
        let c = || cmp_warp.clone();
        let segregated = SliceBlockSource::new(vec![
            BlockTrace::new(vec![m(), m(), m(), m()]),
            BlockTrace::new(vec![c(), c(), c(), c()]),
        ]);
        let mixed = SliceBlockSource::new(vec![
            BlockTrace::new(vec![m(), m(), c(), c()]),
            BlockTrace::new(vec![m(), m(), c(), c()]),
        ]);

        let t_seg = simulate(&config, &segregated).kernel_cycles;
        let t_mix = simulate(&config, &mixed).kernel_cycles;
        assert!(
            t_mix < t_seg,
            "mixed {t_mix} should beat segregated {t_seg}"
        );
    }

    /// Throughput below 1 unit/cycle stretches service time.
    #[test]
    fn fractional_bandwidth_scales_service() {
        let mut config = cfg();
        config.global_bw = 0.25; // 4 cycles per segment
        let m = simulate(
            &config,
            &SliceBlockSource::new(vec![BlockTrace::new(vec![WarpTrace::new(vec![
                WarpOp::GlobalAccess { segments: 8 },
            ])])]),
        );
        assert_eq!(m.kernel_cycles, 8 * 4 + 100);
    }
}
