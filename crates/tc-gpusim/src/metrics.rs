//! Aggregate counters reported by a simulation run.

use crate::Cycles;

/// Metrics of one simulated kernel launch.
///
/// `kernel_cycles` is the headline number (what the paper's tables call
/// "kernel time"); the rest support the analysis experiments — achieved
/// bandwidth for Figure 8, barrier-wait share for the imbalance study,
/// pipeline busy times for the resource-balance study.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelMetrics {
    /// End-to-end simulated kernel duration.
    pub kernel_cycles: Cycles,
    /// Blocks executed.
    pub blocks: usize,
    /// Warps executed (sum over blocks).
    pub warps: usize,
    /// Total compute warp-cycles issued.
    pub compute_cycles: u64,
    /// Total global-memory transactions issued.
    pub global_segments: u64,
    /// Total shared-memory transactions issued.
    pub shared_transactions: u64,
    /// Total block-barrier events (one per warp per barrier).
    pub barrier_arrivals: u64,
    /// Cycles warps spent parked at barriers waiting for the slowest warp —
    /// the direct cost of intra-block workload imbalance.
    pub barrier_wait_cycles: u64,
    /// Cycles the per-SM compute pipelines were busy (summed over SMs).
    pub compute_busy_cycles: u64,
    /// Cycles the per-SM global-memory pipelines were busy (summed over SMs).
    pub global_busy_cycles: u64,
    /// Cycles the per-SM shared-memory pipelines were busy (summed over SMs).
    pub shared_busy_cycles: u64,
}

impl KernelMetrics {
    /// Achieved shared-memory bandwidth in bytes per cycle (4-byte words per
    /// transaction slot are not modelled; each transaction moves up to 128
    /// bytes, we report transaction throughput × 128 B).
    pub fn shared_bandwidth_bytes_per_cycle(&self) -> f64 {
        if self.kernel_cycles == 0 {
            return 0.0;
        }
        self.shared_transactions as f64 * 128.0 / self.kernel_cycles as f64
    }

    /// Achieved global-memory bandwidth in bytes per cycle.
    pub fn global_bandwidth_bytes_per_cycle(&self) -> f64 {
        if self.kernel_cycles == 0 {
            return 0.0;
        }
        self.global_segments as f64 * 128.0 / self.kernel_cycles as f64
    }

    /// Fraction of warp-barrier time lost to imbalance, relative to total
    /// kernel work. A diagnostic for the Section 3.1 model.
    pub fn barrier_wait_share(&self) -> f64 {
        let denom = self.kernel_cycles.max(1) as f64 * self.warps.max(1) as f64;
        self.barrier_wait_cycles as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_of_empty_run_is_zero() {
        let m = KernelMetrics::default();
        assert_eq!(m.shared_bandwidth_bytes_per_cycle(), 0.0);
        assert_eq!(m.global_bandwidth_bytes_per_cycle(), 0.0);
    }

    #[test]
    fn bandwidth_formula() {
        let m = KernelMetrics {
            kernel_cycles: 1000,
            global_segments: 500,
            shared_transactions: 250,
            ..Default::default()
        };
        assert!((m.global_bandwidth_bytes_per_cycle() - 64.0).abs() < 1e-12);
        assert!((m.shared_bandwidth_bytes_per_cycle() - 32.0).abs() < 1e-12);
    }
}
