//! Block-timeline analysis: tail diagnostics and a Chrome-trace export.
//!
//! [`crate::engine::simulate_with_events`] records every block's lifetime;
//! this module turns those records into the quantities the paper's
//! load-balance arguments are about (how long does the last block straggle
//! after the average SM is done?) and into a `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) JSON file for visual inspection.

use crate::engine::BlockEvent;
use std::fmt::Write as _;

/// Aggregate tail statistics of one kernel's block timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TailStats {
    /// Kernel makespan (cycle of the last block completion).
    pub makespan: u64,
    /// Mean over SMs of the cycle their final block completed.
    pub mean_sm_finish: f64,
    /// The straggler window: makespan − earliest SM finish.
    pub straggle_window: u64,
    /// Duration of the single longest block.
    pub longest_block: u64,
    /// Fraction of the makespan occupied by the longest block — values
    /// near 1.0 mean a single block gates the kernel (the load-imbalance
    /// pathology reordering schemes can create or cure).
    pub longest_block_share: f64,
}

/// Computes [`TailStats`] from a block event log.
///
/// Returns `None` for empty logs.
pub fn tail_stats(events: &[BlockEvent]) -> Option<TailStats> {
    if events.is_empty() {
        return None;
    }
    let makespan = events.iter().map(|e| e.end_cycles).max()?;
    let num_sms = events.iter().map(|e| e.sm).max()? + 1;
    let mut sm_finish = vec![0u64; num_sms];
    for e in events {
        sm_finish[e.sm] = sm_finish[e.sm].max(e.end_cycles);
    }
    // SMs that received no blocks finish at 0 and would skew the window;
    // only count SMs that did work.
    let active: Vec<u64> = sm_finish.iter().copied().filter(|&f| f > 0).collect();
    let earliest = active.iter().copied().min().unwrap_or(0);
    let mean = active.iter().sum::<u64>() as f64 / active.len().max(1) as f64;
    let longest_block = events
        .iter()
        .map(|e| e.end_cycles - e.start_cycles)
        .max()
        .unwrap_or(0);
    Some(TailStats {
        makespan,
        mean_sm_finish: mean,
        straggle_window: makespan - earliest,
        longest_block,
        longest_block_share: longest_block as f64 / makespan.max(1) as f64,
    })
}

/// Serializes the block timeline as Chrome-trace JSON ("traceEvents"
/// format): one complete event per block, one track per SM. Load the
/// output in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(events: &[BlockEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Durations in "microseconds" = cycles (tools just want numbers).
        let _ = write!(
            out,
            "{{\"name\":\"block {}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
            e.block,
            e.start_cycles,
            e.end_cycles - e.start_cycles,
            e.sm
        );
    }
    out.push_str("]}");
    out
}

/// A terminal Gantt sketch: one row per SM, `width` columns spanning the
/// makespan, `#` where the SM is executing some block.
pub fn ascii_gantt(events: &[BlockEvent], width: usize) -> String {
    let Some(makespan) = events.iter().map(|e| e.end_cycles).max() else {
        return String::new();
    };
    let num_sms = events.iter().map(|e| e.sm).max().unwrap_or(0) + 1;
    let width = width.max(10);
    let scale = |c: u64| ((c as f64 / makespan.max(1) as f64) * (width - 1) as f64) as usize;
    let mut rows = vec![vec![b' '; width]; num_sms];
    for e in events {
        for cell in &mut rows[e.sm][scale(e.start_cycles)..=scale(e.end_cycles)] {
            *cell = b'#';
        }
    }
    let mut out = String::new();
    for (sm, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "SM{sm:>3} |{}|", String::from_utf8_lossy(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_with_events;
    use crate::ops::WarpOp;
    use crate::trace::{BlockTrace, SliceBlockSource, WarpTrace};
    use crate::GpuConfig;

    fn sample_events() -> Vec<BlockEvent> {
        let blocks: Vec<BlockTrace> = (1..=6)
            .map(|i| BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(i * 50)])]))
            .collect();
        let mut gpu = GpuConfig::tiny();
        gpu.num_sms = 2;
        let (_, events) = simulate_with_events(&gpu, &SliceBlockSource::new(blocks));
        events
    }

    #[test]
    fn every_block_is_logged_once() {
        let events = sample_events();
        let mut ids: Vec<usize> = events.iter().map(|e| e.block).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn events_are_well_formed() {
        for e in sample_events() {
            assert!(e.end_cycles >= e.start_cycles);
            assert!(e.sm < 2);
        }
    }

    #[test]
    fn tail_stats_are_consistent() {
        let events = sample_events();
        let stats = tail_stats(&events).expect("non-empty");
        assert!(stats.makespan > 0);
        assert!(stats.longest_block <= stats.makespan);
        assert!(stats.mean_sm_finish <= stats.makespan as f64);
        assert!((0.0..=1.0).contains(&stats.longest_block_share));
        assert!(tail_stats(&[]).is_none());
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 6);
    }

    #[test]
    fn gantt_renders_one_row_per_sm() {
        let g = ascii_gantt(&sample_events(), 40);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains('#'));
        assert!(ascii_gantt(&[], 40).is_empty());
    }

    #[test]
    fn serial_blocks_tile_the_timeline() {
        // One SM, one slot: blocks must not overlap.
        let blocks: Vec<BlockTrace> = (0..4)
            .map(|_| BlockTrace::new(vec![WarpTrace::new(vec![WarpOp::Compute(100)])]))
            .collect();
        let (_, mut events) =
            simulate_with_events(&GpuConfig::tiny(), &SliceBlockSource::new(blocks));
        events.sort_by_key(|e| e.start_cycles);
        for pair in events.windows(2) {
            assert!(pair[1].start_cycles >= pair[0].end_cycles);
        }
    }
}
