//! Undirected simple graphs in compressed sparse row (CSR) form.

use crate::VertexId;

/// An undirected simple graph stored in CSR form.
///
/// Each undirected edge `{u, v}` appears twice: `v` in `u`'s adjacency list
/// and `u` in `v`'s. Adjacency lists are sorted ascending, contain no
/// duplicates, and never contain the owning vertex (no self-loops).
///
/// Invariants (checked by [`CsrGraph::validate`], enforced by
/// [`crate::GraphBuilder`]):
/// - `offsets.len() == num_vertices + 1`, `offsets[0] == 0`, non-decreasing;
/// - `neighbors.len() == offsets[num_vertices] == 2 * num_edges`;
/// - every list sorted strictly ascending; symmetry (`v ∈ N(u) ⇔ u ∈ N(v)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics (in debug builds) if the arrays violate the CSR invariants.
    /// Prefer [`crate::GraphBuilder`] for untrusted input.
    pub fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        let g = Self { offsets, neighbors };
        debug_assert!(g.validate().is_ok(), "invalid CSR arrays");
        g
    }

    /// Builds a graph from CSR arrays, validating every invariant —
    /// the entry point for untrusted input (e.g. deserialization).
    pub fn try_from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Result<Self, String> {
        let g = Self { offsets, neighbors };
        g.validate()?;
        Ok(g)
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted adjacency list of vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Average degree `2|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_vertices() as f64
    }

    /// The directed average out-degree `|E| / |V|` (the paper's
    /// `d̃_avg`): after orientation every undirected edge contributes one
    /// out-edge, so the average out-degree is independent of the scheme.
    pub fn directed_average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_vertices() as f64
    }

    /// Approximate resident size of the CSR arrays in bytes. Used by
    /// cache byte-budget accounting (e.g. the `tc-service` registry);
    /// intentionally ignores allocator slack and the struct header.
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// Raw CSR offsets (length `num_vertices() + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated adjacency array.
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Checks every CSR invariant; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        let n = self.num_vertices();
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(format!("offsets decrease at vertex {u}"));
            }
        }
        if *self.offsets.last().expect("non-empty") != self.neighbors.len() {
            return Err("last offset must equal neighbors.len()".into());
        }
        for u in 0..n as VertexId {
            let list = self.neighbors(u);
            for w in list.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {u} not strictly ascending"));
                }
            }
            for &v in list {
                if v as usize >= n {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if !self.has_edge(v, u) {
                    return Err(format!("asymmetric edge {u}->{v}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).build()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn triangle_graph_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 0));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn average_degrees() {
        let g = triangle();
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.directed_average_degree(), 1.0);
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let g = CsrGraph {
            offsets: vec![0, 1, 1],
            neighbors: vec![1],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_unsorted() {
        let g = CsrGraph {
            offsets: vec![0, 2, 3, 4],
            neighbors: vec![2, 1, 0, 0],
        };
        assert!(g.validate().is_err());
    }
}
