//! Degree statistics used by the paper's analytic models.

use crate::CsrGraph;

/// Summary of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2|E| / |V|`).
    pub mean: f64,
    /// Population standard deviation of the degree distribution.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`); the paper's imbalance
    /// pathologies appear when this is large.
    pub cv: f64,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            num_vertices: 0,
            num_edges: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            cv: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0f64;
    for u in g.vertices() {
        let d = g.degree(u);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        sum_sq += (d * d) as f64;
    }
    let mean = sum as f64 / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    let std_dev = var.sqrt();
    DegreeStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        min,
        max,
        mean,
        std_dev,
        cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let max = g.vertices().map(|u| g.degree(u)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for u in g.vertices() {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Positive: high-degree vertices attach to each other (social
/// networks); negative: hubs attach to leaves (technological networks).
/// Returns `None` when the correlation is undefined (fewer than two edges
/// or zero variance).
pub fn degree_assortativity(g: &CsrGraph) -> Option<f64> {
    let m = g.num_edges();
    if m < 2 {
        return None;
    }
    // Work over both orientations of each edge (the standard estimator).
    let mut sum_x = 0f64;
    let mut sum_xx = 0f64;
    let mut sum_xy = 0f64;
    let n = (2 * m) as f64;
    for u in g.vertices() {
        let du = g.degree(u) as f64;
        for &v in g.neighbors(u) {
            let dv = g.degree(v) as f64;
            sum_x += du;
            sum_xx += du * du;
            sum_xy += du * dv;
        }
    }
    let mean = sum_x / n;
    let var = sum_xx / n - mean * mean;
    if var <= 0.0 {
        return None;
    }
    let cov = sum_xy / n - mean * mean;
    Some(cov / var)
}

/// Maximum-likelihood estimate of the power-law exponent `γ` for the tail
/// `d ≥ d_min` (Clauset–Shalizi–Newman continuous approximation). Returns
/// `None` if fewer than two vertices qualify.
pub fn power_law_exponent_mle(g: &CsrGraph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let mut count = 0usize;
    let mut log_sum = 0f64;
    for u in g.vertices() {
        let d = g.degree(u);
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / d_min as f64).ln();
        }
    }
    if count < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{power_law_configuration, road_lattice};
    use crate::GraphBuilder;

    #[test]
    fn stats_of_star_graph() {
        // Star with center 0 and 4 leaves.
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert!(s.cv > 0.5);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = power_law_configuration(500, 2.3, 6.0, 8);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn power_law_graph_has_high_cv_road_low() {
        let pl = degree_stats(&power_law_configuration(3000, 2.2, 8.0, 1));
        let road = degree_stats(&road_lattice(55, 55, 0.05, 0.05, 1));
        assert!(
            pl.cv > 2.0 * road.cv,
            "power-law cv {} vs road cv {}",
            pl.cv,
            road.cv
        );
    }

    #[test]
    fn mle_recovers_rough_exponent() {
        let g = power_law_configuration(20000, 2.5, 6.0, 2);
        let gamma = power_law_exponent_mle(&g, 5).expect("enough tail");
        assert!(
            (1.6..=3.4).contains(&gamma),
            "estimated gamma {gamma} implausible"
        );
    }

    #[test]
    fn assortativity_signs_match_structure() {
        // Star: hub pairs exclusively with leaves → strongly negative.
        let star = GraphBuilder::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).build();
        let a = degree_assortativity(&star).expect("defined");
        assert!((a - -1.0).abs() < 1e-9, "star assortativity {a}");

        // Regular ring: all degrees equal → undefined (zero variance).
        let ring = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).build();
        assert_eq!(degree_assortativity(&ring), None);
    }

    #[test]
    fn assortativity_in_valid_range() {
        let g = power_law_configuration(2000, 2.2, 8.0, 3);
        let a = degree_assortativity(&g).expect("defined");
        assert!((-1.0..=1.0).contains(&a), "assortativity {a}");
    }

    #[test]
    fn empty_graph_stats() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv, 0.0);
    }
}
