//! Compact binary graph format, plus the checksummed frame layer the
//! persistence subsystem (`tc-persist`) builds its snapshot and WAL
//! files on.
//!
//! Text edge lists re-parse slowly and lose the canonical CSR layout; this
//! versioned little-endian binary format round-trips a [`CsrGraph`]
//! exactly:
//!
//! ```text
//! magic   8 bytes  b"TCGRAPH1"
//! n       8 bytes  u64 vertex count
//! m       8 bytes  u64 undirected edge count
//! offsets (n+1) × u64
//! adjacency 2m × u32
//! ```
//!
//! The raw format detects *structural* corruption (the CSR invariants are
//! re-validated on read) but not silent payload bit-flips. The **frame**
//! layer adds end-to-end integrity: a magic/version header, a 4-byte
//! content tag, the payload length, and a CRC32 of the payload —
//! corruption anywhere surfaces as a typed [`BinError`], never a panic
//! and never a silently-wrong graph:
//!
//! ```text
//! magic   4 bytes  b"TCFR"
//! version 2 bytes  u16 = 1
//! tag     4 bytes  content kind (e.g. b"CSRG", or tc-persist's tags)
//! len     8 bytes  u64 payload length
//! crc     4 bytes  CRC32 (IEEE) of the payload
//! payload len bytes
//! ```
//!
//! [`write_frame`]/[`read_frame`] are content-agnostic (tc-persist frames
//! its snapshot records and WAL entries through them);
//! [`write_binary_checked`]/[`read_binary_checked`] are the
//! graph-payload convenience pair.

use crate::{CsrGraph, VertexId};
use std::io::{Read, Write};

/// Format magic + version.
pub const MAGIC: &[u8; 8] = b"TCGRAPH1";

/// Frame-layer magic.
pub const FRAME_MAGIC: &[u8; 4] = b"TCFR";

/// Frame-layer format version.
pub const FRAME_VERSION: u16 = 1;

/// Frame tag for a checksummed [`CsrGraph`] payload.
pub const TAG_GRAPH: [u8; 4] = *b"CSRG";

/// Defensive cap on a single frame payload (16 GiB): header `len` fields
/// beyond it are treated as corruption, not allocation requests.
const MAX_FRAME_PAYLOAD: u64 = 1 << 34;

/// Errors from binary (de)serialization.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Structurally invalid payload.
    Corrupt(String),
    /// Frame payload failed its CRC32 check — the file was altered or
    /// bit-rotted after it was written.
    Checksum {
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC computed over the payload actually read.
        actual: u32,
    },
    /// The stream ended inside a frame (torn write): the header promised
    /// more bytes than the file holds.
    Truncated,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::BadMagic => write!(f, "not a recognised tc-graph binary file"),
            BinError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
            BinError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            BinError::Truncated => write!(f, "frame truncated mid-payload (torn write)"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Writes a graph in the binary format.
pub fn write_binary<W: Write>(g: &CsrGraph, mut w: W) -> Result<(), BinError> {
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &v in g.neighbor_array() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph in the binary format, validating all invariants.
pub fn read_binary<R: Read>(mut r: R) -> Result<CsrGraph, BinError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::BadMagic);
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    // Defensive cap: offsets/adjacency allocations derive from the header.
    if n > (1 << 33) || m > (1 << 36) {
        return Err(BinError::Corrupt(format!("implausible sizes n={n} m={m}")));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(2 * m);
    let mut buf = [0u8; 4];
    for _ in 0..2 * m {
        r.read_exact(&mut buf)?;
        neighbors.push(u32::from_le_bytes(buf));
    }
    if offsets.last().copied() != Some(2 * m) {
        return Err(BinError::Corrupt("offsets and edge count disagree".into()));
    }
    CsrGraph::try_from_parts(offsets, neighbors).map_err(BinError::Corrupt)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, BinError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

// --- CRC32 (IEEE 802.3, polynomial 0xEDB88320) ---------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice — the checksum the frame layer records.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- Frame layer ----------------------------------------------------------

/// One decoded frame: its content tag and verified payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Content kind (writer-defined, e.g. [`TAG_GRAPH`]).
    pub tag: [u8; 4],
    /// The payload, already CRC-verified.
    pub payload: Vec<u8>,
}

/// Writes one checksummed frame: header (magic, version, tag, length,
/// CRC32 of `payload`) then the payload itself.
pub fn write_frame<W: Write>(mut w: W, tag: [u8; 4], payload: &[u8]) -> Result<(), BinError> {
    w.write_all(FRAME_MAGIC)?;
    w.write_all(&FRAME_VERSION.to_le_bytes())?;
    w.write_all(&tag)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads the next frame and verifies its checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream (no bytes where the next
/// frame would start) — the loop-termination case WAL replay relies on.
/// A stream that ends *inside* a frame is a torn write
/// ([`BinError::Truncated`]); a payload that fails its CRC is
/// [`BinError::Checksum`]. Neither panics.
pub fn read_frame<R: Read>(mut r: R) -> Result<Option<Frame>, BinError> {
    // The first header byte decides between clean EOF and a torn frame.
    let mut magic = [0u8; 4];
    let mut got = 0usize;
    while got < magic.len() {
        match r.read(&mut magic[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(BinError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(BinError::Io(e)),
        }
    }
    if &magic != FRAME_MAGIC {
        return Err(BinError::BadMagic);
    }
    let mut header = [0u8; 18]; // version(2) + tag(4) + len(8) + crc(4)
    r.read_exact(&mut header).map_err(truncated_on_eof)?;
    let version = u16::from_le_bytes([header[0], header[1]]);
    if version != FRAME_VERSION {
        return Err(BinError::Corrupt(format!(
            "unsupported frame version {version}"
        )));
    }
    let tag = [header[2], header[3], header[4], header[5]];
    let len = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(BinError::Corrupt(format!(
            "implausible frame payload length {len}"
        )));
    }
    let expected = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(truncated_on_eof)?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(BinError::Checksum { expected, actual });
    }
    Ok(Some(Frame { tag, payload }))
}

fn truncated_on_eof(e: std::io::Error) -> BinError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        BinError::Truncated
    } else {
        BinError::Io(e)
    }
}

// --- Checksummed graph format ---------------------------------------------

/// Serializes a graph into the raw (unframed) payload bytes: the v1
/// body without its magic. `tc-persist` embeds these inside its own
/// frames.
pub fn graph_to_bytes(g: &CsrGraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + (g.num_vertices() + 1) * 8 + 2 * g.num_edges() * 4);
    buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    buf.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    for &o in g.offsets() {
        buf.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &v in g.neighbor_array() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Deserializes [`graph_to_bytes`] output, re-validating every CSR
/// invariant.
pub fn graph_from_bytes(bytes: &[u8]) -> Result<CsrGraph, BinError> {
    let mut r = bytes;
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    if n > (1 << 33) || m > (1 << 36) {
        return Err(BinError::Corrupt(format!("implausible sizes n={n} m={m}")));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(2 * m);
    let mut buf = [0u8; 4];
    for _ in 0..2 * m {
        r.read_exact(&mut buf)?;
        neighbors.push(u32::from_le_bytes(buf));
    }
    if offsets.last().copied() != Some(2 * m) {
        return Err(BinError::Corrupt("offsets and edge count disagree".into()));
    }
    CsrGraph::try_from_parts(offsets, neighbors).map_err(BinError::Corrupt)
}

/// Writes a graph as one checksummed frame ([`TAG_GRAPH`]): the
/// bit-flip-detecting counterpart of [`write_binary`].
pub fn write_binary_checked<W: Write>(g: &CsrGraph, w: W) -> Result<(), BinError> {
    write_frame(w, TAG_GRAPH, &graph_to_bytes(g))
}

/// Reads a graph written by [`write_binary_checked`], verifying the
/// checksum before any structural validation.
pub fn read_binary_checked<R: Read>(r: R) -> Result<CsrGraph, BinError> {
    let frame = read_frame(r)?.ok_or(BinError::Truncated)?;
    if frame.tag != TAG_GRAPH {
        return Err(BinError::Corrupt(format!(
            "unexpected frame tag {:?} (wanted CSRG)",
            frame.tag
        )));
    }
    graph_from_bytes(&frame.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, power_law_configuration};

    #[test]
    fn round_trips_exactly() {
        for g in [
            CsrGraph::empty(0),
            CsrGraph::empty(7),
            erdos_renyi(100, 300, 1),
            power_law_configuration(200, 2.2, 6.0, 2),
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).expect("write");
            let h = read_binary(&buf[..]).expect("read");
            assert_eq!(g, h);
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = read_binary(&b"NOTAGRPH________"[..]).unwrap_err();
        assert!(matches!(err, BinError::BadMagic));
    }

    #[test]
    fn rejects_truncated_payload() {
        let g = erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_tampered_adjacency() {
        let g = erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        // Flip a byte inside the adjacency region (breaks symmetry/sorting).
        let idx = buf.len() - 3;
        buf[idx] ^= 0xFF;
        assert!(matches!(read_binary(&buf[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn rejects_implausible_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip_and_terminate_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, *b"AAAA", b"first payload").expect("write");
        write_frame(&mut buf, *b"BBBB", b"").expect("write");
        let mut r = &buf[..];
        let a = read_frame(&mut r).expect("read").expect("frame present");
        assert_eq!(
            (a.tag, a.payload.as_slice()),
            (*b"AAAA", &b"first payload"[..])
        );
        let b = read_frame(&mut r).expect("read").expect("frame present");
        assert_eq!((b.tag, b.payload.len()), (*b"BBBB", 0));
        assert!(read_frame(&mut r).expect("clean EOF").is_none());
    }

    #[test]
    fn checked_format_round_trips() {
        let g = erdos_renyi(100, 300, 1);
        let mut buf = Vec::new();
        write_binary_checked(&g, &mut buf).expect("write");
        assert_eq!(read_binary_checked(&buf[..]).expect("read"), g);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        // The satellite guarantee: flip ANY single byte of a checked
        // file and reading reports a typed error — never a panic, never
        // a silently different graph.
        let g = erdos_renyi(30, 60, 7);
        let mut clean = Vec::new();
        write_binary_checked(&g, &mut clean).expect("write");
        for idx in 0..clean.len() {
            let mut buf = clean.clone();
            buf[idx] ^= 0x40;
            match read_binary_checked(&buf[..]) {
                Err(_) => {}
                Ok(h) => panic!("flip at byte {idx} went undetected (got {h:?})"),
            }
        }
        // Payload flips specifically surface as checksum mismatches.
        let payload_start = clean.len() - 8;
        let mut buf = clean.clone();
        buf[payload_start] ^= 0xFF;
        assert!(matches!(
            read_binary_checked(&buf[..]),
            Err(BinError::Checksum { .. })
        ));
    }

    #[test]
    fn torn_frames_are_distinguished_from_clean_eof() {
        let g = erdos_renyi(20, 40, 2);
        let mut buf = Vec::new();
        write_binary_checked(&g, &mut buf).expect("write");
        // Cut inside the payload: torn.
        let torn = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(torn), Err(BinError::Truncated)));
        // Cut inside the header: also torn.
        assert!(matches!(read_frame(&buf[..9]), Err(BinError::Truncated)));
        // No bytes at all: clean end-of-stream.
        assert!(read_frame(&[][..]).expect("clean").is_none());
    }
}
