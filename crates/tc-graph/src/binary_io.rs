//! Compact binary graph format.
//!
//! Text edge lists re-parse slowly and lose the canonical CSR layout; this
//! versioned little-endian binary format round-trips a [`CsrGraph`]
//! exactly:
//!
//! ```text
//! magic   8 bytes  b"TCGRAPH1"
//! n       8 bytes  u64 vertex count
//! m       8 bytes  u64 undirected edge count
//! offsets (n+1) × u64
//! adjacency 2m × u32
//! ```

use crate::{CsrGraph, VertexId};
use std::io::{Read, Write};

/// Format magic + version.
pub const MAGIC: &[u8; 8] = b"TCGRAPH1";

/// Errors from binary (de)serialization.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Structurally invalid payload.
    Corrupt(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::BadMagic => write!(f, "not a TCGRAPH1 file"),
            BinError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Writes a graph in the binary format.
pub fn write_binary<W: Write>(g: &CsrGraph, mut w: W) -> Result<(), BinError> {
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &v in g.neighbor_array() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph in the binary format, validating all invariants.
pub fn read_binary<R: Read>(mut r: R) -> Result<CsrGraph, BinError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::BadMagic);
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    // Defensive cap: offsets/adjacency allocations derive from the header.
    if n > (1 << 33) || m > (1 << 36) {
        return Err(BinError::Corrupt(format!("implausible sizes n={n} m={m}")));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(2 * m);
    let mut buf = [0u8; 4];
    for _ in 0..2 * m {
        r.read_exact(&mut buf)?;
        neighbors.push(u32::from_le_bytes(buf));
    }
    if offsets.last().copied() != Some(2 * m) {
        return Err(BinError::Corrupt("offsets and edge count disagree".into()));
    }
    CsrGraph::try_from_parts(offsets, neighbors).map_err(BinError::Corrupt)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, BinError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, power_law_configuration};

    #[test]
    fn round_trips_exactly() {
        for g in [
            CsrGraph::empty(0),
            CsrGraph::empty(7),
            erdos_renyi(100, 300, 1),
            power_law_configuration(200, 2.2, 6.0, 2),
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).expect("write");
            let h = read_binary(&buf[..]).expect("read");
            assert_eq!(g, h);
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = read_binary(&b"NOTAGRPH________"[..]).unwrap_err();
        assert!(matches!(err, BinError::BadMagic));
    }

    #[test]
    fn rejects_truncated_payload() {
        let g = erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_tampered_adjacency() {
        let g = erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        // Flip a byte inside the adjacency region (breaks symmetry/sorting).
        let idx = buf.len() - 3;
        buf[idx] ^= 0xFF;
        assert!(matches!(read_binary(&buf[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn rejects_implausible_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(BinError::Corrupt(_))));
    }
}
