//! Plain-text edge-list reading and writing.
//!
//! The format is the SNAP convention the paper's datasets ship in: one
//! `u v` pair per line, `#`-prefixed comment lines, whitespace-separated,
//! vertex ids need not be contiguous (they are compacted on load).

use crate::{CsrGraph, GraphBuilder, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from any reader. Vertex ids are compacted to
/// `0..n` in first-appearance order; the mapping is discarded (triangle
/// counts are label-invariant).
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let intern = |raw: u64, remap: &mut HashMap<u64, VertexId>| -> VertexId {
        let next = remap.len() as VertexId;
        *remap.entry(raw).or_insert(next)
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let u = intern(a, &mut remap);
        let v = intern(b, &mut remap);
        edges.push((u, v));
    }
    let mut builder = GraphBuilder::new(remap.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as an edge list (each undirected edge once, `u < v`).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_style_input() {
        let text = "# comment\n% also comment\n10 20\n20 30\n10 30\n";
        let g = read_edge_list(text.as_bytes()).expect("parse");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_garbage_lines() {
        let err = read_edge_list("1 2\nfoo bar\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_single_token_lines() {
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn round_trips_through_text() {
        let g = crate::generators::erdos_renyi(60, 150, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let h = read_edge_list(&buf[..]).expect("read");
        // Ids were written already compacted in ascending order, so the
        // round trip is exact for vertices that have at least one edge.
        assert_eq!(g.num_edges(), h.num_edges());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).expect("parse");
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
