//! Oriented graphs: the output of an edge-directing scheme.

use crate::VertexId;

/// A directed graph produced by orienting an undirected [`crate::CsrGraph`].
///
/// Only *out*-neighbour lists are stored (triangle counting on oriented
/// graphs never consults in-neighbours), and each list is sorted so binary
/// search applies directly — matching the layout every GPU kernel in the
/// paper assumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectedGraph {
    offsets: Vec<usize>,
    out_neighbors: Vec<VertexId>,
    /// Total undirected edges in the source graph (== out_neighbors.len()).
    num_edges: usize,
}

impl DirectedGraph {
    /// Builds from raw out-CSR arrays. See [`crate::orient_by_rank`] for the
    /// trusted construction path.
    pub fn from_parts(offsets: Vec<usize>, out_neighbors: Vec<VertexId>) -> Self {
        let num_edges = out_neighbors.len();
        let g = Self {
            offsets,
            out_neighbors,
            num_edges,
        };
        debug_assert!(g.validate().is_ok(), "invalid directed CSR arrays");
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (== undirected edges of the source graph).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Out-degree of `u` (the paper's `d̃(u)`).
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted out-neighbour list of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.out_neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Approximate resident size of the out-CSR arrays in bytes (cache
    /// byte-budget accounting; ignores allocator slack).
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.out_neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// Whether the directed edge `u -> v` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Average out-degree (`d̃_avg = |E| / |V|`).
    pub fn average_out_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges as f64 / self.num_vertices() as f64
    }

    /// Out-degree sequence indexed by vertex id.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .map(|u| self.offsets[u + 1] - self.offsets[u])
            .collect()
    }

    /// Raw CSR offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated out-neighbour array.
    pub fn out_neighbor_array(&self) -> &[VertexId] {
        &self.out_neighbors
    }

    /// Exhaustively checks for a directed 3-cycle `u -> v -> w -> u`.
    ///
    /// The paper (footnote 1) requires orientations to contain none, or
    /// triangles would be silently missed. Intended for tests; cost is the
    /// same order as triangle counting itself.
    pub fn find_directed_triangle_cycle(&self) -> Option<(VertexId, VertexId, VertexId)> {
        for u in self.vertices() {
            for &v in self.out_neighbors(u) {
                for &w in self.out_neighbors(v) {
                    if self.has_edge(w, u) {
                        return Some((u, v, w));
                    }
                }
            }
        }
        None
    }

    /// Checks structural invariants (mirrors [`crate::CsrGraph::validate`],
    /// minus symmetry, which directed graphs do not have).
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        let n = self.num_vertices();
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(format!("offsets decrease at vertex {u}"));
            }
        }
        if *self.offsets.last().expect("non-empty") != self.out_neighbors.len() {
            return Err("last offset must equal out_neighbors.len()".into());
        }
        for u in 0..n as VertexId {
            let list = self.out_neighbors(u);
            for w in list.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("out-list of {u} not strictly ascending"));
                }
            }
            for &v in list {
                if v as usize >= n {
                    return Err(format!("out-neighbor {v} of {u} out of range"));
                }
                if v == u {
                    return Err(format!("directed self-loop at {u}"));
                }
                if self.has_edge(v, u) {
                    return Err(format!("2-cycle between {u} and {v}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> DirectedGraph {
        // 0 -> 1 -> 2, 0 -> 2
        DirectedGraph::from_parts(vec![0, 2, 3, 3], vec![1, 2, 2])
    }

    #[test]
    fn basic_accessors() {
        let g = path();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn no_cycle_in_dag_orientation() {
        assert_eq!(path().find_directed_triangle_cycle(), None);
    }

    #[test]
    fn detects_directed_triangle_cycle() {
        // 0 -> 1, 1 -> 2, 2 -> 0 — skips validate (2-cycle check passes,
        // but the 3-cycle must be caught).
        let g = DirectedGraph {
            offsets: vec![0, 1, 2, 3],
            out_neighbors: vec![1, 2, 0],
            num_edges: 3,
        };
        assert!(g.find_directed_triangle_cycle().is_some());
    }

    #[test]
    fn validate_rejects_two_cycle() {
        let g = DirectedGraph {
            offsets: vec![0, 1, 2],
            out_neighbors: vec![1, 0],
            num_edges: 2,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn average_out_degree_matches_edges_over_vertices() {
        let g = path();
        assert!((g.average_out_degree() - 1.0).abs() < 1e-12);
    }
}
