//! Connected components and induced subgraphs.

use crate::{CsrGraph, GraphBuilder, VertexId};
use std::collections::VecDeque;

/// Component labelling of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Component id of each vertex (ids are dense, assigned in order of
    /// first discovery).
    pub label: Vec<u32>,
    /// Vertex count of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of the largest component (ties: lowest id).
    pub fn giant(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, usize::MAX - i))
            .map(|(i, _)| i as u32)
    }
}

/// Labels connected components by BFS. `O(|V| + |E|)`.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        label[s as usize] = id;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = id;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Extracts the subgraph induced by `vertices`, relabelling them densely
/// in the order given. Returns the subgraph and the mapping from new ids
/// back to the original ones.
///
/// # Panics
/// Panics if `vertices` contains duplicates or out-of-range ids.
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in vertices.iter().enumerate() {
        assert!(
            new_id[old as usize] == u32::MAX,
            "duplicate vertex {old} in subgraph selection"
        );
        new_id[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(vertices.len());
    for (new_u, &old_u) in vertices.iter().enumerate() {
        for &old_v in g.neighbors(old_u) {
            let new_v = new_id[old_v as usize];
            if new_v != u32::MAX && (new_u as u32) < new_v {
                b.add_edge(new_u as u32, new_v);
            }
        }
    }
    (b.build(), vertices.to_vec())
}

/// The largest connected component as its own graph, plus the mapping
/// from its ids back to the original graph.
pub fn giant_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let comps = connected_components(g);
    match comps.giant() {
        None => (CsrGraph::empty(0), Vec::new()),
        Some(id) => {
            let members: Vec<VertexId> = g
                .vertices()
                .filter(|&v| comps.label[v as usize] == id)
                .collect();
            induced_subgraph(g, &members)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn single_component_plus_isolates() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3); // {0,1,2}, {3}, {4}
        assert_eq!(c.sizes[c.giant().unwrap() as usize], 3);
        assert_eq!(c.label[0], c.label[2]);
        assert_ne!(c.label[0], c.label[3]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let c = connected_components(&CsrGraph::empty(0));
        assert_eq!(c.count(), 0);
        assert_eq!(c.giant(), None);
    }

    #[test]
    fn component_sizes_sum_to_vertex_count() {
        let g = erdos_renyi(200, 150, 7); // sparse → several components
        let c = connected_components(&g);
        assert_eq!(c.sizes.iter().sum::<usize>(), 200);
        assert!(c.count() > 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]).build();
        let (sub, back) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // 0-1, 1-2, 0-2
        assert_eq!(back, vec![0, 1, 2]);
    }

    #[test]
    fn giant_component_is_connected() {
        let g = erdos_renyi(300, 350, 3);
        let (giant, back) = giant_component(&g);
        assert_eq!(giant.num_vertices(), back.len());
        let c = connected_components(&giant);
        assert_eq!(c.count(), 1, "giant component must be connected");
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn duplicate_selection_panics() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]).build();
        let _ = induced_subgraph(&g, &[0, 0]);
    }
}
