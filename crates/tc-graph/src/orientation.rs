//! Turning undirected graphs into oriented ones via a strict total rank.

use crate::{CsrGraph, DirectedGraph, VertexId};

/// Orients every undirected edge from the endpoint with the **smaller rank**
/// to the one with the larger rank.
///
/// Because `rank` induces a strict total order on vertices, the resulting
/// directed graph is acyclic — in particular it contains no directed
/// 3-cycle, so every triangle of the source graph survives as exactly one
/// directed wedge-closing pattern `u -> v, u -> w, v -> w`. All edge-directing
/// schemes in `tc-core` reduce to computing a rank array and calling this.
///
/// # Panics
/// Panics if `rank.len() != g.num_vertices()` or if two adjacent vertices
/// share a rank (which would leave an edge undirectable).
pub fn orient_by_rank(g: &CsrGraph, rank: &[u64]) -> DirectedGraph {
    assert_eq!(
        rank.len(),
        g.num_vertices(),
        "rank array must cover every vertex"
    );
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for u in 0..n as VertexId {
        let ru = rank[u as usize];
        let out = g
            .neighbors(u)
            .iter()
            .filter(|&&v| {
                let rv = rank[v as usize];
                assert_ne!(ru, rv, "adjacent vertices {u} and {v} share rank {ru}");
                ru < rv
            })
            .count();
        acc += out;
        offsets.push(acc);
    }

    let mut out_neighbors = Vec::with_capacity(acc);
    for u in 0..n as VertexId {
        let ru = rank[u as usize];
        // Source list is sorted; filtering preserves order, so out-lists
        // stay sorted without a second pass.
        out_neighbors.extend(
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&v| ru < rank[v as usize]),
        );
    }

    DirectedGraph::from_parts(offsets, out_neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn k4() -> CsrGraph {
        GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).build()
    }

    #[test]
    fn identity_rank_orients_small_to_large_id() {
        let g = k4();
        let d = orient_by_rank(&g, &[0, 1, 2, 3]);
        assert_eq!(d.out_neighbors(0), &[1, 2, 3]);
        assert_eq!(d.out_degree(3), 0);
        assert_eq!(d.num_edges(), 6);
        assert!(d.validate().is_ok());
        assert_eq!(d.find_directed_triangle_cycle(), None);
    }

    #[test]
    fn reversed_rank_flips_orientation() {
        let g = k4();
        let d = orient_by_rank(&g, &[3, 2, 1, 0]);
        assert_eq!(d.out_degree(0), 0);
        assert_eq!(d.out_neighbors(3), &[0, 1, 2]);
    }

    #[test]
    fn every_edge_directed_exactly_once() {
        let g = k4();
        let d = orient_by_rank(&g, &[7, 3, 11, 5]);
        assert_eq!(d.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(d.has_edge(u, v) ^ d.has_edge(v, u));
        }
    }

    #[test]
    #[should_panic(expected = "share rank")]
    fn equal_ranks_on_adjacent_vertices_panic() {
        let g = k4();
        let _ = orient_by_rank(&g, &[1, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "must cover every vertex")]
    fn short_rank_array_panics() {
        let g = k4();
        let _ = orient_by_rank(&g, &[0, 1]);
    }
}
