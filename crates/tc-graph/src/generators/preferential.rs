//! Barabási–Albert preferential attachment.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a preferential-attachment graph: vertices arrive one at a time
/// and attach `edges_per_vertex` edges to existing vertices chosen with
/// probability proportional to their current degree.
///
/// Produces the heavy-tailed degree distribution and temporal (DAG-like)
/// structure of citation networks — the stand-in model for `cit-Patent`.
pub fn preferential_attachment(n: usize, edges_per_vertex: usize, seed: u64) -> CsrGraph {
    assert!(n > edges_per_vertex, "need more vertices than edges each");
    assert!(edges_per_vertex >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // `targets` holds one entry per edge endpoint, so sampling an index
    // uniformly samples a vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * edges_per_vertex);

    // Seed clique over the first edges_per_vertex + 1 vertices.
    let k = edges_per_vertex + 1;
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }

    for u in k..n {
        let mut chosen = Vec::with_capacity(edges_per_vertex);
        while chosen.len() < edges_per_vertex {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(u as VertexId, t);
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(200, 3, 5),
            preferential_attachment(200, 3, 5)
        );
    }

    #[test]
    fn edge_count_formula() {
        let n = 500;
        let m = 4;
        let g = preferential_attachment(n, m, 1);
        let seed_edges = (m + 1) * m / 2;
        // Each later vertex adds exactly m distinct edges; some may
        // coincide with existing ones and be deduped, hence <=.
        assert!(g.num_edges() <= seed_edges + (n - m - 1) * m);
        assert!(g.num_edges() >= seed_edges + (n - m - 1) * m * 9 / 10);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = preferential_attachment(2000, 3, 7);
        let max_d = g.vertices().map(|u| g.degree(u)).max().unwrap_or(0);
        assert!(max_d as f64 > 5.0 * g.average_degree());
        assert!(g.validate().is_ok());
    }
}
