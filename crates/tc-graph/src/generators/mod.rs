//! Seeded synthetic graph generators.
//!
//! Every generator is deterministic given its parameters and seed, which is
//! what makes the experiment corpus in `tc-datasets` reproducible. The
//! models cover the structural classes of the paper's evaluation datasets:
//!
//! - [`rmat`](mod@rmat): R-MAT / Kronecker graphs (the paper's `kron-logn*` inputs and
//!   GraphChallenge `s*.kron` inputs);
//! - [`configuration`]: power-law configuration model (the ACL model used
//!   for the paper's Figure 7 approximation-ratio study, and stand-ins for
//!   skewed social graphs);
//! - [`preferential`]: Barabási–Albert preferential attachment (citation
//!   graph stand-in);
//! - [`lattice`]: perturbed 2-D lattices (road-network stand-in: near-uniform
//!   tiny degrees);
//! - [`erdos_renyi`](mod@erdos_renyi): G(n, m) uniform random graphs (model sanity baseline);
//! - [`small_world`]: Watts–Strogatz rewired rings (high clustering).

pub mod configuration;
pub mod erdos_renyi;
pub mod lattice;
pub mod preferential;
pub mod rmat;
pub mod small_world;

pub use configuration::{power_law_configuration, power_law_degree_sequence};
pub use erdos_renyi::erdos_renyi;
pub use lattice::road_lattice;
pub use preferential::preferential_attachment;
pub use rmat::{rmat, RmatParams};
pub use small_world::watts_strogatz;
