//! Power-law configuration model (Aiello–Chung–Lu style).

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a degree sequence of length `n` from a discrete power law
/// `Pr[d] ∝ d^(-gamma)` on `1..=max_degree`, scaled so the *average* degree
/// is approximately `target_avg_degree`.
///
/// This is the sequence family the paper uses (via the ACL configuration
/// model) for its Figure 7 study of the approximation ratio under varying
/// edge density.
pub fn power_law_degree_sequence(
    n: usize,
    gamma: f64,
    target_avg_degree: f64,
    max_degree: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(max_degree >= 1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Inverse-CDF sampling over the truncated discrete power law.
    let weights: Vec<f64> = (1..=max_degree).map(|d| (d as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(max_degree);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let mut degrees: Vec<usize> = (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            match cdf.binary_search_by(|p| p.partial_cmp(&r).expect("finite")) {
                Ok(i) | Err(i) => (i + 1).min(max_degree),
            }
        })
        .collect();

    // Rescale multiplicatively toward the target average, clamping to the
    // valid range — this keeps the shape while letting callers sweep density.
    let avg = degrees.iter().sum::<usize>() as f64 / n.max(1) as f64;
    if avg > 0.0 {
        let scale = target_avg_degree / avg;
        for d in &mut degrees {
            *d = (((*d as f64) * scale).round() as usize).clamp(1, max_degree);
        }
    }
    degrees
}

/// Instantiates a configuration-model graph from a power-law degree
/// sequence: stubs are shuffled and paired; self-loops and multi-edges are
/// dropped (erased configuration model), so realized degrees are close to
/// but not exactly the drawn sequence — standard practice, and all the
/// paper's analysis needs is the degree *shape*.
pub fn power_law_configuration(
    n: usize,
    gamma: f64,
    target_avg_degree: f64,
    seed: u64,
) -> CsrGraph {
    let max_degree = (n as f64).sqrt() as usize * 4 + 8;
    let degrees =
        power_law_degree_sequence(n, gamma, target_avg_degree, max_degree.min(n - 1), seed);
    from_degree_sequence(&degrees, seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// Pairs stubs of the given degree sequence uniformly at random (erased
/// configuration model).
pub fn from_degree_sequence(degrees: &[usize], seed: u64) -> CsrGraph {
    let n = degrees.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<VertexId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    // Fisher–Yates shuffle.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        b.add_edge(pair[0], pair[1]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_deterministic() {
        let a = power_law_degree_sequence(100, 2.2, 8.0, 50, 3);
        let b = power_law_degree_sequence(100, 2.2, 8.0, 50, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sequence_hits_target_density_roughly() {
        let degs = power_law_degree_sequence(5000, 2.2, 10.0, 200, 5);
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!((avg - 10.0).abs() < 3.0, "avg degree {avg} far from target");
    }

    #[test]
    fn graph_is_valid_and_skewed() {
        let g = power_law_configuration(2000, 2.1, 8.0, 9);
        assert!(g.validate().is_ok());
        let max_d = g.vertices().map(|u| g.degree(u)).max().unwrap_or(0);
        assert!(max_d as f64 > 3.0 * g.average_degree());
    }

    #[test]
    fn degree_sequence_graph_respects_bounds() {
        let g = from_degree_sequence(&[3, 3, 2, 2, 1, 1], 4);
        assert_eq!(g.num_vertices(), 6);
        for u in g.vertices() {
            assert!(g.degree(u) <= 3 + 2); // erased model can only lose edges
        }
    }
}
