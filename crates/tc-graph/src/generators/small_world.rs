//! Watts–Strogatz small-world graphs.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Watts–Strogatz graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbours on each side, with each edge
/// rewired to a random endpoint with probability `beta`.
///
/// High clustering coefficient (lots of triangles) with near-uniform
/// degrees — a useful contrast case for the workload-diversity model, since
/// it has triangles but no long/short list disparity.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n > 2 * k, "ring too small for k={k}");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for offset in 1..=k {
            let v = (u + offset) % n;
            if rng.gen::<f64>() < beta {
                // Rewire: keep u, pick a uniform random other endpoint.
                let mut w = rng.gen_range(0..n);
                while w == u {
                    w = rng.gen_range(0..n);
                }
                b.add_edge(u as VertexId, w as VertexId);
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_pure_ring() {
        let g = watts_strogatz(20, 2, 0.0, 0);
        assert_eq!(g.num_edges(), 40);
        for u in g.vertices() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn ring_lattice_is_triangle_rich() {
        let g = watts_strogatz(30, 2, 0.0, 0);
        // Each vertex closes a triangle with (u+1, u+2).
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn deterministic_and_valid() {
        let g1 = watts_strogatz(100, 3, 0.2, 4);
        let g2 = watts_strogatz(100, 3, 0.2, 4);
        assert_eq!(g1, g2);
        assert!(g1.validate().is_ok());
    }
}
