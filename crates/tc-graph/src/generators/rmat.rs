//! R-MAT / Kronecker graph generator (Chakrabarti–Zhan–Faloutsos).

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for the recursive R-MAT edge placement.
///
/// The defaults `(0.57, 0.19, 0.19, 0.05)` are the graph500 / Kronecker
/// standard and what the paper's `kron-logn*` datasets use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    /// Probability of recursing into the bottom-right quadrant.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9 && self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0,
            "R-MAT quadrant probabilities must be non-negative and sum to 1"
        );
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// (approximately) `edge_factor * 2^scale` undirected edges before
/// deduplication.
///
/// Self-loops and duplicate edges produced by the stochastic process are
/// removed by the builder, so the realized edge count is slightly below the
/// nominal one — the same behaviour as the graph500 generator the paper
/// references.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    assert!(scale < 31, "scale {scale} would overflow VertexId");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let (u, v) = rmat_edge(scale, params, &mut rng);
        b.add_edge(u, v);
    }
    b.build()
}

fn rmat_edge(scale: u32, p: RmatParams, rng: &mut StdRng) -> (VertexId, VertexId) {
    let mut u = 0 as VertexId;
    let mut v = 0 as VertexId;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = rmat(8, 8, RmatParams::default(), 42);
        let g2 = rmat(8, 8, RmatParams::default(), 42);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(8, 8, RmatParams::default(), 1);
        let g2 = rmat(8, 8, RmatParams::default(), 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn size_is_close_to_nominal() {
        let g = rmat(10, 8, RmatParams::default(), 7);
        assert_eq!(g.num_vertices(), 1024);
        // Dedup removes some edges but most survive.
        assert!(g.num_edges() > 1024 * 8 / 2);
        assert!(g.num_edges() <= 1024 * 8);
    }

    #[test]
    fn skewed_quadrants_produce_skewed_degrees() {
        let g = rmat(10, 8, RmatParams::default(), 11);
        let max_d = g.vertices().map(|u| g.degree(u)).max().unwrap_or(0);
        // Power-law-ish: the hub degree dwarfs the average (16).
        assert!(
            max_d > 8 * g.average_degree() as usize,
            "max degree {max_d} not skewed"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_params_panic() {
        let p = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
        };
        let _ = rmat(4, 2, p, 0);
    }
}
