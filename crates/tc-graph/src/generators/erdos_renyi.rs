//! Uniform G(n, m) random graphs.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random graph with `n` vertices and (after dedup)
/// about `m` undirected edges.
///
/// Used as a no-skew control in model-validation tests: with near-uniform
/// degrees, the paper's balancing machinery should offer little benefit,
/// and our experiments confirm the models predict that.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let mut v = rng.gen_range(0..n) as VertexId;
        while v == u {
            v = rng.gen_range(0..n) as VertexId;
        }
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 300, 1), erdos_renyi(100, 300, 1));
    }

    #[test]
    fn no_self_loops_and_valid() {
        let g = erdos_renyi(50, 200, 2);
        assert!(g.validate().is_ok());
        for u in g.vertices() {
            assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn edge_count_close_to_nominal() {
        let g = erdos_renyi(1000, 5000, 3);
        assert!(g.num_edges() > 4800 && g.num_edges() <= 5000);
    }
}
