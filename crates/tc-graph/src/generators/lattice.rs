//! Road-network-like perturbed lattices.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a road-network stand-in: a `rows × cols` 2-D grid where each
/// vertex connects to its right and down neighbours, a fraction
/// `diagonal_prob` of cells additionally gain a diagonal shortcut, and a
/// fraction `drop_prob` of grid edges are deleted.
///
/// The result has near-uniform degree ≈ 2–4 and very few triangles —
/// matching the statistical profile of `road_central` in the paper's
/// Table 4 (14M vertices, 17M edges, only 229K triangles): low average
/// degree and no skew, which is exactly the regime where edge directing has
/// the least room to help.
pub fn road_lattice(
    rows: usize,
    cols: usize,
    diagonal_prob: f64,
    drop_prob: f64,
    seed: u64,
) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1);
    assert!((0.0..=1.0).contains(&diagonal_prob) && (0.0..=1.0).contains(&drop_prob));
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() >= drop_prob {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.gen::<f64>() >= drop_prob {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols && rng.gen::<f64>() < diagonal_prob {
                b.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_grid_has_expected_edge_count() {
        // rows*(cols-1) + cols*(rows-1) edges for an unperturbed grid.
        let g = road_lattice(10, 10, 0.0, 0.0, 0);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 10 * 9 * 2);
    }

    #[test]
    fn degrees_are_near_uniform() {
        let g = road_lattice(40, 40, 0.05, 0.05, 1);
        let max_d = g.vertices().map(|u| g.degree(u)).max().unwrap_or(0);
        assert!(max_d <= 7, "road-like graphs must stay low-degree");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            road_lattice(20, 20, 0.1, 0.1, 9),
            road_lattice(20, 20, 0.1, 0.1, 9)
        );
    }
}
