//! Ingestion of raw edge lists into validated [`CsrGraph`]s.

use crate::{CsrGraph, VertexId};

/// Accumulates raw (possibly duplicated, possibly self-looping) undirected
/// edges and produces a canonical [`CsrGraph`].
///
/// The builder is the single trusted entry point for constructing graphs
/// from external data: it drops self-loops, deduplicates parallel edges,
/// sorts adjacency lists, and symmetrizes.
///
/// ```
/// use tc_graph::GraphBuilder;
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 0), (1, 1), (2, 3)]).build();
/// assert_eq!(g.num_edges(), 2); // duplicate and self-loop removed
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `num_vertices` vertices and no edges yet.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Convenience constructor from a slice of undirected edges.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = Self::new(num_vertices);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }

    /// Adds one undirected edge. Self-loops are silently dropped; endpoint
    /// order does not matter; duplicates are removed at [`build`] time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    ///
    /// [`build`]: GraphBuilder::build
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of raw edges added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a canonical [`CsrGraph`].
    ///
    /// Construction is two stable counting-sort passes over the `2m`
    /// directed copies of the edges — first keyed by destination, then by
    /// source — which leaves the pairs in lexicographic `(src, dst)`
    /// order with duplicates adjacent. A final linear walk drops the
    /// duplicates while writing offsets. `O(n + m)` total, replacing the
    /// seed's `O(m log m)` comparison sort; the stream subsystem leans on
    /// this every compaction.
    pub fn build(self) -> CsrGraph {
        let n = self.num_vertices;
        let m2 = self.edges.len() * 2;

        // Pass 1: stable counting sort of all directed pairs by dst.
        let mut start = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            start[u as usize + 1] += 1;
            start[v as usize + 1] += 1;
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        let mut cursor = start;
        let mut by_dst: Vec<(VertexId, VertexId)> = vec![(0, 0); m2];
        for &(u, v) in &self.edges {
            by_dst[cursor[v as usize]] = (u, v);
            cursor[v as usize] += 1;
            by_dst[cursor[u as usize]] = (v, u);
            cursor[u as usize] += 1;
        }

        // Pass 2: stable counting sort by src. Stability preserves the
        // dst order within each source, so each adjacency list comes out
        // ascending with duplicate entries adjacent.
        let mut row = vec![0usize; n + 1];
        for &(src, _) in &by_dst {
            row[src as usize + 1] += 1;
        }
        for i in 0..n {
            row[i + 1] += row[i];
        }
        let mut cursor = row.clone();
        let mut neighbors = vec![0 as VertexId; m2];
        for &(src, dst) in &by_dst {
            neighbors[cursor[src as usize]] = dst;
            cursor[src as usize] += 1;
        }

        // Final walk: compact duplicates in place, recording offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut write = 0usize;
        for u in 0..n {
            let mut prev = None;
            for read in row[u]..row[u + 1] {
                let v = neighbors[read];
                if prev != Some(v) {
                    neighbors[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            offsets.push(write);
        }
        neighbors.truncate(write);

        CsrGraph::from_parts(offsets, neighbors)
    }
}

/// Assembles a [`CsrGraph`] directly from per-vertex sorted neighbour
/// lists, visiting each list twice: once for its length (offsets), once
/// for its elements. The counting-sort analogue for sources that can
/// replay a row cheaply — `tc-stream` compaction streams its layered
/// (base ∪ adds) \ dels rows through this instead of re-sorting.
///
/// Each list must be strictly ascending and symmetric (`v ∈ list(u)` ⇔
/// `u ∈ list(v)`); [`CsrGraph::from_parts`] enforces the per-row
/// invariants in debug builds.
pub fn csr_from_sorted_lists<I, F>(num_vertices: usize, mut lists: F) -> CsrGraph
where
    F: FnMut(VertexId) -> I,
    I: Iterator<Item = VertexId> + ExactSizeIterator,
{
    let mut offsets = Vec::with_capacity(num_vertices + 1);
    offsets.push(0usize);
    let mut total = 0usize;
    for u in 0..num_vertices {
        total += lists(u as VertexId).len();
        offsets.push(total);
    }
    let mut neighbors = Vec::with_capacity(total);
    for u in 0..num_vertices {
        neighbors.extend(lists(u as VertexId));
    }
    debug_assert_eq!(neighbors.len(), total, "list lengths must be exact");
    CsrGraph::from_parts(offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = GraphBuilder::from_edges(5, &[(4, 2), (2, 0), (2, 3), (1, 2)]).build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn counting_sort_build_matches_comparison_build() {
        // Reference implementation: the seed's comparison-sort pipeline.
        fn reference(n: usize, edges: &[(VertexId, VertexId)]) -> CsrGraph {
            let mut canon: Vec<(VertexId, VertexId)> = edges
                .iter()
                .filter(|&&(u, v)| u != v)
                .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
                .collect();
            canon.sort_unstable();
            canon.dedup();
            let mut lists: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            for &(u, v) in &canon {
                lists[u as usize].push(v);
                lists[v as usize].push(u);
            }
            let mut offsets = vec![0usize];
            let mut neighbors = Vec::new();
            for mut l in lists {
                l.sort_unstable();
                neighbors.extend_from_slice(&l);
                offsets.push(neighbors.len());
            }
            CsrGraph::from_parts(offsets, neighbors)
        }

        // Pseudo-random edge soup with duplicates and self-loops.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut edges = Vec::new();
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 33) % 97) as VertexId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((state >> 33) % 97) as VertexId;
            edges.push((u, v));
        }
        let got = GraphBuilder::from_edges(97, &edges).build();
        let want = reference(97, &edges);
        assert_eq!(got.num_edges(), want.num_edges());
        for u in got.vertices() {
            assert_eq!(got.neighbors(u), want.neighbors(u), "vertex {u}");
        }
        assert!(got.validate().is_ok());
    }

    #[test]
    fn csr_from_sorted_lists_round_trips() {
        let g = GraphBuilder::from_edges(5, &[(4, 2), (2, 0), (2, 3), (1, 2), (0, 1)]).build();
        let rebuilt = csr_from_sorted_lists(g.num_vertices(), |u| g.neighbors(u).iter().copied());
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(rebuilt.neighbors(u), g.neighbors(u));
        }
    }
}
