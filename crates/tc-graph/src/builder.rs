//! Ingestion of raw edge lists into validated [`CsrGraph`]s.

use crate::{CsrGraph, VertexId};

/// Accumulates raw (possibly duplicated, possibly self-looping) undirected
/// edges and produces a canonical [`CsrGraph`].
///
/// The builder is the single trusted entry point for constructing graphs
/// from external data: it drops self-loops, deduplicates parallel edges,
/// sorts adjacency lists, and symmetrizes.
///
/// ```
/// use tc_graph::GraphBuilder;
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 0), (1, 1), (2, 3)]).build();
/// assert_eq!(g.num_edges(), 2); // duplicate and self-loop removed
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `num_vertices` vertices and no edges yet.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Convenience constructor from a slice of undirected edges.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = Self::new(num_vertices);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }

    /// Adds one undirected edge. Self-loops are silently dropped; endpoint
    /// order does not matter; duplicates are removed at [`build`] time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    ///
    /// [`build`]: GraphBuilder::build
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of raw edges added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a canonical [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_vertices;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were processed in sorted order, so each vertex's list of
        // *larger* neighbours is ascending, but smaller neighbours arrive
        // interleaved; one sort per list restores the invariant.
        for u in 0..n {
            neighbors[offsets[u]..offsets[u + 1]].sort_unstable();
        }

        CsrGraph::from_parts(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = GraphBuilder::from_edges(5, &[(4, 2), (2, 0), (2, 3), (1, 2)]).build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}
