//! Graph substrate for the GPU triangle-counting reproduction.
//!
//! This crate provides everything the higher layers need to represent and
//! manipulate graphs:
//!
//! - [`CsrGraph`]: an undirected simple graph in compressed sparse row form
//!   with sorted adjacency lists — the canonical in-memory representation
//!   used by every triangle-counting algorithm in the workspace.
//! - [`DirectedGraph`]: an *oriented* graph produced by an edge-directing
//!   scheme; out-neighbour lists are sorted so binary search works directly.
//! - [`GraphBuilder`]: ingestion from raw edge lists with deduplication and
//!   self-loop removal.
//! - [`Permutation`]: validated vertex relabellings used by the reordering
//!   schemes.
//! - [`generators`]: seeded synthetic graph generators (R-MAT/Kronecker,
//!   power-law configuration model, Erdős–Rényi, road-like lattices,
//!   preferential attachment, Watts–Strogatz).
//! - [`io`]: plain-text edge-list reading and writing.
//! - [`layered`]: sorted neighbour iteration over a CSR row with an
//!   insert/delete overlay — the primitive the dynamic-graph subsystem
//!   (`tc-stream`) counts triangles against between compactions.
//! - [`stats`]: degree statistics used by the paper's analytic models.
//!
//! All generators take explicit seeds and are fully deterministic, so every
//! experiment in the workspace is reproducible bit-for-bit.

pub mod binary_io;
pub mod builder;
pub mod components;
pub mod csr;
pub mod directed;
pub mod generators;
pub mod io;
pub mod layered;
pub mod orientation;
pub mod permutation;
pub mod stats;

pub use builder::{csr_from_sorted_lists, GraphBuilder};
pub use csr::CsrGraph;
pub use directed::DirectedGraph;
pub use layered::LayeredNeighbors;
pub use orientation::orient_by_rank;
pub use permutation::Permutation;

/// Vertex identifier. Graphs in this workspace are bounded by `u32` vertex
/// counts (the paper's largest graph has 201M vertices, our scaled stand-ins
/// far fewer), which halves adjacency memory versus `usize` on 64-bit hosts.
pub type VertexId = u32;
