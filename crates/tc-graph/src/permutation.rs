//! Validated vertex relabellings.

use crate::{CsrGraph, VertexId};

/// A bijective relabelling of vertices: `new_id = perm[old_id]`.
///
/// Every vertex-reordering scheme in `tc-core` produces a `Permutation`,
/// which is then applied to a [`CsrGraph`] (and, by the algorithms, to the
/// oriented graph derived from it). Construction validates bijectivity, so
/// downstream code can rely on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    old_to_new: Vec<VertexId>,
}

impl Permutation {
    /// Wraps an `old → new` mapping, validating that it is a bijection on
    /// `0..len`.
    pub fn new(old_to_new: Vec<VertexId>) -> Result<Self, String> {
        let n = old_to_new.len();
        let mut seen = vec![false; n];
        for (old, &new) in old_to_new.iter().enumerate() {
            let Some(slot) = seen.get_mut(new as usize) else {
                return Err(format!("vertex {old} maps to out-of-range id {new}"));
            };
            if *slot {
                return Err(format!("two vertices map to id {new}"));
            }
            *slot = true;
        }
        Ok(Self { old_to_new })
    }

    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            old_to_new: (0..n as VertexId).collect(),
        }
    }

    /// Builds the permutation that places vertices in the order given by
    /// `order` (i.e. `order[k]` receives new id `k`).
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: &[VertexId]) -> Self {
        let mut old_to_new = vec![VertexId::MAX; order.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            assert!(
                (old_id as usize) < order.len() && old_to_new[old_id as usize] == VertexId::MAX,
                "order is not a permutation (duplicate or out-of-range id {old_id})"
            );
            old_to_new[old_id as usize] = new_id as VertexId;
        }
        Self { old_to_new }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Whether this permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// Approximate resident size of the mapping in bytes (cache
    /// byte-budget accounting).
    pub fn approx_bytes(&self) -> usize {
        self.old_to_new.len() * std::mem::size_of::<VertexId>()
    }

    /// New id of an old vertex.
    #[inline]
    pub fn map(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// The inverse mapping (`new → old`).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0 as VertexId; self.len()];
        for (old, &new) in self.old_to_new.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        Self { old_to_new: inv }
    }

    /// Raw `old → new` array.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.old_to_new
    }

    /// Relabels a graph: vertex `u` becomes `perm.map(u)`.
    pub fn apply(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(self.len(), g.num_vertices(), "permutation size mismatch");
        let n = g.num_vertices();
        let inv = self.inverse();

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for new_u in 0..n as VertexId {
            acc += g.degree(inv.map(new_u));
            offsets.push(acc);
        }

        let mut neighbors = Vec::with_capacity(acc);
        for new_u in 0..n as VertexId {
            let old_u = inv.map(new_u);
            let start = neighbors.len();
            neighbors.extend(g.neighbors(old_u).iter().map(|&v| self.map(v)));
            neighbors[start..].sort_unstable();
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn identity_is_noop() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3), (1, 2)]).build();
        let p = Permutation::identity(4);
        assert_eq!(p.apply(&g), g);
    }

    #[test]
    fn rejects_non_bijection() {
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3]).is_err());
        assert!(Permutation::new(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn from_order_round_trips() {
        let order = vec![2, 0, 1];
        let p = Permutation::from_order(&order);
        assert_eq!(p.map(2), 0);
        assert_eq!(p.map(0), 1);
        assert_eq!(p.map(1), 2);
        assert_eq!(p.inverse().as_slice(), &order[..]);
    }

    #[test]
    fn apply_preserves_structure() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).build();
        let p = Permutation::new(vec![3, 1, 0, 2]).expect("bijection");
        let h = p.apply(&g);
        assert_eq!(h.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(h.has_edge(p.map(u), p.map(v)));
        }
        // Degree multiset preserved.
        let mut dg: Vec<_> = g.vertices().map(|u| g.degree(u)).collect();
        let mut dh: Vec<_> = h.vertices().map(|u| h.degree(u)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
        assert!(h.validate().is_ok());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::new(vec![4, 2, 0, 1, 3]).expect("bijection");
        let inv = p.inverse();
        for u in 0..5 {
            assert_eq!(inv.map(p.map(u)), u);
        }
    }
}
