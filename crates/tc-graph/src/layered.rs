//! Layered adjacency: iterate a sorted neighbour list with a sorted
//! overlay of insertions and deletions, without materializing the merge.
//!
//! This is the neighbour-iteration primitive of the dynamic-graph
//! subsystem (`tc-stream`): a [`crate::CsrGraph`] stays immutable while a
//! delta layer records edges added and removed since the last compaction.
//! [`LayeredNeighbors`] walks the *effective* list — `(base ∪ add) \ del`
//! — in ascending order, in `O(|base| + |add| + |del|)` with no
//! allocation, so merge-intersections over layered neighbourhoods cost
//! the same order as over plain CSR rows.

use crate::VertexId;

/// Sorted iterator over `(base ∪ add) \ del`.
///
/// Invariants assumed (and `debug_assert`ed at construction):
/// - all three slices are sorted strictly ascending;
/// - `add` is disjoint from `base` (an insert of an existing edge is a
///   no-op upstream, never recorded);
/// - `del ⊆ base` (a delete of a delta-inserted edge removes it from
///   `add` upstream instead).
#[derive(Clone, Debug)]
pub struct LayeredNeighbors<'a> {
    base: &'a [VertexId],
    add: &'a [VertexId],
    del: &'a [VertexId],
}

impl<'a> LayeredNeighbors<'a> {
    /// A layered view over one vertex's lists.
    pub fn new(base: &'a [VertexId], add: &'a [VertexId], del: &'a [VertexId]) -> Self {
        debug_assert!(base.windows(2).all(|w| w[0] < w[1]), "base not sorted");
        debug_assert!(add.windows(2).all(|w| w[0] < w[1]), "add not sorted");
        debug_assert!(del.windows(2).all(|w| w[0] < w[1]), "del not sorted");
        debug_assert!(
            add.iter().all(|v| base.binary_search(v).is_err()),
            "add must be disjoint from base"
        );
        debug_assert!(
            del.iter().all(|v| base.binary_search(v).is_ok()),
            "del must be a subset of base"
        );
        Self { base, add, del }
    }

    /// Effective degree: `|base| + |add| - |del|`.
    pub fn len(&self) -> usize {
        self.base.len() + self.add.len() - self.del.len()
    }

    /// Whether the effective list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test on the effective list (binary searches, no walk).
    pub fn contains(&self, v: VertexId) -> bool {
        if self.add.binary_search(&v).is_ok() {
            return true;
        }
        self.base.binary_search(&v).is_ok() && self.del.binary_search(&v).is_err()
    }
}

impl<'a> Iterator for LayeredNeighbors<'a> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            let b = self.base.first().copied();
            let a = self.add.first().copied();
            let next = match (b, a) {
                (None, None) => return None,
                // `add` is disjoint from `base`, so equality is impossible;
                // take the smaller head.
                (Some(b), Some(a)) if a < b => {
                    self.add = &self.add[1..];
                    return Some(a);
                }
                (None, Some(a)) => {
                    self.add = &self.add[1..];
                    return Some(a);
                }
                (Some(b), _) => b,
            };
            self.base = &self.base[1..];
            // `del` is sorted like `base`: drop stale heads, then test.
            while let Some(&d) = self.del.first() {
                if d < next {
                    self.del = &self.del[1..];
                } else {
                    break;
                }
            }
            if self.del.first() == Some(&next) {
                self.del = &self.del[1..];
                continue; // deleted — skip
            }
            return Some(next);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for LayeredNeighbors<'_> {}

/// Counts `|a ∩ b|` of two ascending iterators by a two-pointer merge —
/// the layered-adjacency form of `tc-algos`' `merge_count`, usable on
/// [`LayeredNeighbors`] without materializing either side.
pub fn merge_intersection_count(
    mut a: impl Iterator<Item = VertexId>,
    mut b: impl Iterator<Item = VertexId>,
) -> u64 {
    let mut count = 0u64;
    let (mut x, mut y) = (a.next(), b.next());
    while let (Some(u), Some(v)) = (x, y) {
        match u.cmp(&v) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                count += 1;
                x = a.next();
                y = b.next();
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(base: &[u32], add: &[u32], del: &[u32]) -> Vec<u32> {
        LayeredNeighbors::new(base, add, del).collect()
    }

    #[test]
    fn plain_base_passes_through() {
        assert_eq!(collect(&[1, 3, 5], &[], &[]), vec![1, 3, 5]);
        assert_eq!(collect(&[], &[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn adds_interleave_in_order() {
        assert_eq!(collect(&[2, 6], &[1, 4, 9], &[]), vec![1, 2, 4, 6, 9]);
        assert_eq!(collect(&[], &[3, 7], &[]), vec![3, 7]);
    }

    #[test]
    fn dels_are_skipped() {
        assert_eq!(collect(&[1, 2, 3, 4], &[], &[2, 4]), vec![1, 3]);
        assert_eq!(collect(&[1, 2], &[], &[1, 2]), Vec::<u32>::new());
    }

    #[test]
    fn mixed_layers_match_reference_set_algebra() {
        let base = [0, 2, 4, 6, 8];
        let add = [1, 5, 9];
        let del = [2, 8];
        assert_eq!(collect(&base, &add, &del), vec![0, 1, 4, 5, 6, 9]);
        let it = LayeredNeighbors::new(&base, &add, &del);
        assert_eq!(it.len(), 6);
        assert!(it.contains(5));
        assert!(it.contains(6));
        assert!(!it.contains(2));
        assert!(!it.contains(7));
    }

    #[test]
    fn exact_size_hint() {
        let it = LayeredNeighbors::new(&[1, 2, 3], &[7], &[2]);
        assert_eq!(it.size_hint(), (3, Some(3)));
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn intersection_count_matches_naive() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [2u32, 3, 4, 7, 10];
        let naive = a.iter().filter(|v| b.contains(v)).count() as u64;
        assert_eq!(
            merge_intersection_count(a.iter().copied(), b.iter().copied()),
            naive
        );
        assert_eq!(
            merge_intersection_count(std::iter::empty(), b.iter().copied()),
            0
        );
    }

    #[test]
    fn layered_intersection() {
        // Effective lists: {1,4,6} and {4,5,6}.
        let x = LayeredNeighbors::new(&[1, 2, 6], &[4], &[2]);
        let y = LayeredNeighbors::new(&[4, 5], &[6], &[]);
        assert_eq!(merge_intersection_count(x, y), 2);
    }
}
