//! Property tests on the core graph data structures.

use proptest::prelude::*;
use tc_graph::generators::erdos_renyi;
use tc_graph::{orient_by_rank, CsrGraph, GraphBuilder, Permutation, VertexId};

/// Strategy: an arbitrary small raw edge list (duplicates and self-loops
/// included — the builder must clean them up).
fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder output always satisfies every CSR invariant.
    #[test]
    fn builder_output_is_always_valid((n, edges) in arb_edges(64, 200)) {
        let g = GraphBuilder::from_edges(n as usize, &edges).build();
        prop_assert_eq!(g.num_vertices(), n as usize);
        prop_assert!(g.validate().is_ok());
        // No self-loops survive, and the edge count never exceeds the
        // distinct input pairs.
        for v in g.vertices() {
            prop_assert!(!g.has_edge(v, v));
        }
    }

    /// Builder is idempotent: rebuilding from its own edge list gives the
    /// same graph.
    #[test]
    fn builder_round_trips((n, edges) in arb_edges(48, 150)) {
        let g = GraphBuilder::from_edges(n as usize, &edges).build();
        let again = GraphBuilder::from_edges(
            g.num_vertices(),
            &g.edges().collect::<Vec<_>>(),
        ).build();
        prop_assert_eq!(g, again);
    }

    /// Applying a permutation then its inverse is the identity.
    #[test]
    fn permutation_inverse_round_trips(
        (n, edges) in arb_edges(40, 120),
        seed in 0u64..1_000,
    ) {
        let g = GraphBuilder::from_edges(n as usize, &edges).build();
        let perm = random_permutation(n as usize, seed);
        let h = perm.apply(&g);
        let back = perm.inverse().apply(&h);
        prop_assert_eq!(back, g);
    }

    /// Any injective rank orients every edge exactly once, acyclically.
    #[test]
    fn orientation_is_total_and_antisymmetric(
        (n, edges) in arb_edges(40, 120),
        seed in 0u64..1_000,
    ) {
        let g = GraphBuilder::from_edges(n as usize, &edges).build();
        // A random bijective rank.
        let rank: Vec<u64> = random_permutation(n as usize, seed)
            .as_slice().iter().map(|&v| v as u64).collect();
        let d = orient_by_rank(&g, &rank);
        prop_assert_eq!(d.num_edges(), g.num_edges());
        prop_assert!(d.validate().is_ok());
        for (u, v) in g.edges() {
            prop_assert!(d.has_edge(u, v) ^ d.has_edge(v, u));
        }
    }

    /// Text round trip: write_edge_list ∘ read_edge_list preserves edges.
    #[test]
    fn text_io_round_trips(seed in 0u64..500) {
        let g = erdos_renyi(60, 180, seed);
        let mut buf = Vec::new();
        tc_graph::io::write_edge_list(&g, &mut buf).expect("write");
        let h = tc_graph::io::read_edge_list(&buf[..]).expect("read");
        prop_assert_eq!(g.num_edges(), h.num_edges());
    }

    /// Binary round trip is exact.
    #[test]
    fn binary_io_round_trips(seed in 0u64..500) {
        let g = erdos_renyi(60, 180, seed);
        let mut buf = Vec::new();
        tc_graph::binary_io::write_binary(&g, &mut buf).expect("write");
        let h = tc_graph::binary_io::read_binary(&buf[..]).expect("read");
        prop_assert_eq!(g, h);
    }

    /// Component sizes partition the vertex set, and each component is
    /// internally reachable.
    #[test]
    fn components_partition_the_graph(seed in 0u64..500) {
        let g = erdos_renyi(80, 90, seed); // sparse → multiple components
        let c = tc_graph::components::connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.num_vertices());
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
    }
}

/// Deterministic pseudo-random permutation (Fisher–Yates on a seeded LCG;
/// proptest drives the seed).
fn random_permutation(n: usize, seed: u64) -> Permutation {
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    Permutation::from_order(&order)
}

#[test]
fn empty_inputs_are_fine() {
    let g = CsrGraph::empty(0);
    assert!(g.validate().is_ok());
    let p = Permutation::identity(0);
    assert_eq!(p.apply(&g), g);
    assert_eq!(orient_by_rank(&g, &[]).num_edges(), 0);
}
